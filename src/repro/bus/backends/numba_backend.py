"""The JIT batch backend: the cycle loop compiled to machine code.

The numpy backend pays a fixed number of array-op dispatches per cycle;
for the fleet sizes the paper's figures need, most of that is still
interpreter overhead.  This backend replaces the per-cycle dispatch
sequence with two self-contained scalar loops (one per buffering mode)
that ``numba.njit`` compiles to native code operating on **the exact
same state arrays** the numpy program uses.

**Bit-identity contract.**  The scalar loops are written to consume the
per-row Philox streams in exactly the numpy program's order and to
reproduce its arithmetic exactly (left-associative hot-spot products,
truncating inverse-CDF casts, first-minimum FCFS scans, ``floor(u *
count)`` tie-break picks), so every counter, EBW, latency sketch and
RNG end-state is bit-identical to the numpy backend - proven by
``tests/properties/test_backend_equivalence.py`` - and the two share
the ``simulation-batch@1`` cache namespace.

The loops are also valid plain Python: ``NumbaBackend(jit=False)`` runs
them interpreted, so the bit-identity suite executes even where numba
is not installed (the registry's default instance always JITs and
raises a :class:`ConfigurationError` naming the ``[batch-jit]`` extra
when numba is missing).

**Stream re-entry.**  The numpy program refills a row's uniform buffer
lazily at each draw site; the scalar loops instead check a conservative
per-stream headroom margin at each cycle boundary and return to the
Python driver, which refills the depleted rows and re-enters.  Because
``Generator.random(k)`` splits compose sequentially, refill granularity
never changes the values drawn - only *when* host work happens.
Latency observations are spilled to preallocated event buffers inside
the loop and replayed into the host-side sketches between segments, in
the same per-cycle grouping the numpy program uses.
"""

from __future__ import annotations

import math

from repro.bus.backends.base import BATCH_ENGINE_TOKEN, BatchBackend
from repro.core.errors import ConfigurationError

_NEVER = 1 << 30


# ----------------------------------------------------------------------
# The scalar cycle loops.  Each is one self-contained function (njit
# cannot call back into plain Python) covering every feature flag via
# branches on loop-invariant booleans; absent features receive dummy
# arrays that the guarded branches never touch.  Both return
# ``(cycles_done, events_recorded)`` so the driver can refill streams /
# drain events and re-enter.
# ----------------------------------------------------------------------
def _unbuffered_loop(
    count,
    cycle0,
    n_arr,
    m_arr,
    fleet,
    r_arr,
    pc_arr,
    proc_first,
    random_tie,
    track_ready,
    collect,
    collect_serv,
    record,
    geometric,
    geom_arr,
    requesting,
    target,
    issue,
    wake,
    svc_finish,
    svc_proc,
    module_free,
    out_full,
    out_proc,
    out_ready,
    out_wait,
    out_dur,
    completions,
    request_transfers,
    total_latency,
    busy_accum,
    trace_rows,
    trace_pad,
    trace_len,
    trace_pos,
    hot_fraction,
    hot_module,
    hot_rescale,
    log1p_neg_p,
    log_access_arr,
    chunk,
    has_targets,
    targets_buf,
    targets_pos,
    has_think,
    think_buf,
    think_pos,
    arb_buf,
    arb_pos,
    access_buf,
    access_pos,
    ev_cycle,
    ev_row,
    ev_wait,
    ev_total,
    ev_serv,
    ev_cap,
):
    done = 0
    nev = 0
    cycle = cycle0
    while done < count:
        # Segment boundary: stop while every stream still has enough
        # buffered draws for one full cycle (at most one draw per row
        # per stream here) and the event buffer can hold a full cycle.
        stop = False
        for f in range(fleet):
            if random_tie and arb_pos[f] + 1 > chunk:
                stop = True
                break
            if has_targets and targets_pos[f] + 1 > chunk:
                stop = True
                break
            if has_think and think_pos[f] + 1 > chunk:
                stop = True
                break
            if geometric and access_pos[f] + 1 > chunk:
                stop = True
                break
        if stop:
            break
        if record and nev + fleet > ev_cap:
            break

        for f in range(fleet):
            # Per-row shape bounds: a packed fleet pads every row to
            # the group maximum, but padded lanes/modules stay inert
            # because the loops never scan past the row's own extent.
            n = n_arr[f]
            m = m_arr[f]
            # 1. processor-cycle boundaries: waking processors issue.
            for i in range(n):
                if wake[i, f] == cycle:
                    issue[i, f] = cycle
                    requesting[i, f] = True
                    wake[i, f] = _NEVER

            # 2. arbitration on the pre-tick state (winners are fixed
            #    before this cycle's completions mutate the slots).
            n_count = 0
            for i in range(n):
                if requesting[i, f] and module_free[target[i, f], f]:
                    n_count += 1
            m_count = 0
            for k in range(m):
                if out_full[k, f]:
                    m_count += 1
            u_arb = 0.0
            if random_tie:
                # One draw per row per cycle, consumed unconditionally
                # (the numpy arbiter's take_all does the same).
                u_arb = arb_buf[f, arb_pos[f]]
                arb_pos[f] += 1
            if proc_first:
                do_request = n_count > 0
                do_response = m_count > 0 and n_count == 0
            else:
                do_response = m_count > 0
                do_request = n_count > 0 and m_count == 0
            win_i = 0
            if do_request:
                if random_tie:
                    pick = int(u_arb * n_count)
                    seen = 0
                    for i in range(n):
                        if requesting[i, f] and module_free[target[i, f], f]:
                            if seen == pick:
                                win_i = i
                                break
                            seen += 1
                else:
                    best = _NEVER
                    for i in range(n):
                        if (
                            requesting[i, f]
                            and module_free[target[i, f], f]
                            and issue[i, f] < best
                        ):
                            best = issue[i, f]
                            win_i = i
            win_k = 0
            if do_response:
                if random_tie:
                    pick = int(u_arb * m_count)
                    seen = 0
                    for k in range(m):
                        if out_full[k, f]:
                            if seen == pick:
                                win_k = k
                                break
                            seen += 1
                else:
                    best = _NEVER
                    for k in range(m):
                        if out_full[k, f] and out_ready[k, f] < best:
                            best = out_ready[k, f]
                            win_k = k

            # 3. module completions this cycle.
            for k in range(m):
                if svc_finish[k, f] == cycle:
                    out_full[k, f] = True
                    out_proc[k, f] = svc_proc[k, f]
                    if track_ready:
                        out_ready[k, f] = cycle + 1

            # 4. the granted transfer completes at the end of the cycle.
            if do_request:
                i = win_i
                k = target[i, f]
                requesting[i, f] = False
                request_transfers[f] += 1
                module_free[k, f] = False
                svc_proc[k, f] = i
                if geom_arr[f]:
                    u = access_buf[f, access_pos[f]]
                    access_pos[f] += 1
                    dur = 1 + int(math.log1p(-u) / log_access_arr[f])
                else:
                    dur = r_arr[f]
                svc_finish[k, f] = cycle + dur
                if collect:
                    out_wait[k, f] = cycle - issue[i, f]
                    if collect_serv:
                        out_dur[k, f] = dur
                busy_accum[f] += dur
            if do_response:
                k = win_k
                i = out_proc[k, f]
                out_full[k, f] = False
                module_free[k, f] = True
                completions[f] += 1
                total = (cycle + 1) - issue[i, f]
                total_latency[f] += total
                if record:
                    ev_cycle[nev] = cycle
                    ev_row[nev] = f
                    ev_wait[nev] = out_wait[k, f]
                    ev_total[nev] = total
                    if collect_serv:
                        ev_serv[nev] = out_dur[k, f]
                    nev += 1
                if trace_rows[f]:
                    position = trace_pos[f, i]
                    tgt = trace_pad[f, i, position % trace_len[f, i]]
                    trace_pos[f, i] = position + 1
                else:
                    u = targets_buf[f, targets_pos[f]]
                    targets_pos[f] += 1
                    fraction = hot_fraction[f]
                    if u < fraction:
                        tgt = hot_module[f]
                    else:
                        drawn = int((u - fraction) * hot_rescale[f] * m)
                        if drawn > m - 1:
                            drawn = m - 1
                        tgt = drawn
                target[i, f] = tgt
                if has_think:
                    u = think_buf[f, think_pos[f]]
                    think_pos[f] += 1
                    failures = int(math.log1p(-u) / log1p_neg_p[f, i])
                    w = cycle + 1 + failures * pc_arr[f]
                    if w > _NEVER:
                        w = _NEVER
                    wake[i, f] = w
                else:
                    wake[i, f] = cycle + 1
        cycle += 1
        done += 1
    return done, nev


def _buffered_loop(
    count,
    cycle0,
    n_arr,
    m_arr,
    fleet,
    r_arr,
    pc_arr,
    depth_arr,
    capacity_arr,
    proc_first,
    random_tie,
    track_ready,
    collect,
    collect_serv,
    record,
    geometric,
    geom_arr,
    requesting,
    target,
    issue,
    wake,
    svc_finish,
    svc_proc,
    svc_active,
    stalled,
    stalled_proc,
    resolve,
    inq_ring,
    inq_head,
    inq_len,
    outq_ring,
    outq_head,
    outq_len,
    outq_ready,
    head_ready,
    svc_wait,
    stalled_wait,
    outq_wait,
    svc_dur,
    stalled_dur,
    outq_dur,
    completions,
    request_transfers,
    total_latency,
    busy_accum,
    trace_rows,
    trace_pad,
    trace_len,
    trace_pos,
    hot_fraction,
    hot_module,
    hot_rescale,
    log1p_neg_p,
    log_access_arr,
    chunk,
    has_targets,
    targets_buf,
    targets_pos,
    has_think,
    think_buf,
    think_pos,
    arb_buf,
    arb_pos,
    access_buf,
    access_pos,
    ev_cycle,
    ev_row,
    ev_wait,
    ev_total,
    ev_serv,
    ev_cap,
):
    done = 0
    nev = 0
    cycle = cycle0
    while done < count:
        stop = False
        for f in range(fleet):
            if random_tie and arb_pos[f] + 1 > chunk:
                stop = True
                break
            if has_targets and targets_pos[f] + 1 > chunk:
                stop = True
                break
            if has_think and think_pos[f] + 1 > chunk:
                stop = True
                break
            # A row can draw up to one access time per module (resolve
            # or finish pulls) plus one direct service per cycle.
            if geometric and access_pos[f] + m_arr[f] + 2 > chunk:
                stop = True
                break
        if stop:
            break
        if record and nev + fleet > ev_cap:
            break

        for f in range(fleet):
            # Per-row shape bounds (see the unbuffered loop): the ring
            # arrays are dimensioned to the pack maxima, but wraps use
            # the row's own depth/capacity so indices replay the
            # unpacked fleet's exactly.
            n = n_arr[f]
            m = m_arr[f]
            depth = depth_arr[f]
            capacity = capacity_arr[f]
            # 1. processor-cycle boundaries: waking processors issue.
            for i in range(n):
                if wake[i, f] == cycle:
                    issue[i, f] = cycle
                    requesting[i, f] = True
                    wake[i, f] = _NEVER

            # Busy accounting: one count per module serving this cycle
            # (pre-tick, like the vector loop's svc_active reduction).
            active = 0
            for k in range(m):
                if svc_active[k, f]:
                    active += 1
            busy_accum[f] += active

            # 2. arbitration on the pre-tick state.
            n_count = 0
            for i in range(n):
                k = target[i, f]
                if requesting[i, f] and not (
                    (svc_active[k, f] or stalled[k, f])
                    and inq_len[k, f] >= depth
                ):
                    n_count += 1
            m_count = 0
            for k in range(m):
                if outq_len[k, f] > 0:
                    m_count += 1
            u_arb = 0.0
            if random_tie:
                u_arb = arb_buf[f, arb_pos[f]]
                arb_pos[f] += 1
            if proc_first:
                do_request = n_count > 0
                do_response = m_count > 0 and n_count == 0
            else:
                do_response = m_count > 0
                do_request = n_count > 0 and m_count == 0
            win_i = 0
            if do_request:
                if random_tie:
                    pick = int(u_arb * n_count)
                    seen = 0
                    for i in range(n):
                        k = target[i, f]
                        if requesting[i, f] and not (
                            (svc_active[k, f] or stalled[k, f])
                            and inq_len[k, f] >= depth
                        ):
                            if seen == pick:
                                win_i = i
                                break
                            seen += 1
                else:
                    best = _NEVER
                    for i in range(n):
                        k = target[i, f]
                        if (
                            requesting[i, f]
                            and not (
                                (svc_active[k, f] or stalled[k, f])
                                and inq_len[k, f] >= depth
                            )
                            and issue[i, f] < best
                        ):
                            best = issue[i, f]
                            win_i = i
            win_k = 0
            if do_response:
                if random_tie:
                    pick = int(u_arb * m_count)
                    seen = 0
                    for k in range(m):
                        if outq_len[k, f] > 0:
                            if seen == pick:
                                win_k = k
                                break
                            seen += 1
                else:
                    best = _NEVER
                    for k in range(m):
                        if outq_len[k, f] > 0 and head_ready[k, f] < best:
                            best = head_ready[k, f]
                            win_k = k

            # 3. module events: stall resolutions scheduled by last
            #    cycle's response grants, then service completions.
            for k in range(m):
                if resolve[k, f]:
                    resolve[k, f] = False
                    length = outq_len[k, f]
                    slot = outq_head[k, f] + length
                    if slot >= capacity:
                        slot -= capacity
                    outq_ring[slot, k, f] = stalled_proc[k, f]
                    if track_ready:
                        outq_ready[slot, k, f] = cycle + 1
                        if length == 0:
                            head_ready[k, f] = cycle + 1
                    if collect:
                        outq_wait[slot, k, f] = stalled_wait[k, f]
                        if collect_serv:
                            outq_dur[slot, k, f] = stalled_dur[k, f]
                    outq_len[k, f] = length + 1
                    stalled[k, f] = False
                    if inq_len[k, f] > 0:
                        head = inq_head[k, f]
                        lane = inq_ring[head, k, f]
                        svc_active[k, f] = True
                        svc_proc[k, f] = lane
                        if geom_arr[f]:
                            u = access_buf[f, access_pos[f]]
                            access_pos[f] += 1
                            dur = 1 + int(math.log1p(-u) / log_access_arr[f])
                        else:
                            dur = r_arr[f]
                        svc_finish[k, f] = cycle + dur
                        if collect:
                            svc_wait[k, f] = cycle - issue[lane, f]
                            if collect_serv:
                                svc_dur[k, f] = dur
                        head += 1
                        if head >= depth:
                            head -= depth
                        inq_head[k, f] = head
                        inq_len[k, f] -= 1
            for k in range(m):
                if svc_finish[k, f] == cycle:
                    svc_active[k, f] = False
                    length = outq_len[k, f]
                    if length < capacity:
                        slot = outq_head[k, f] + length
                        if slot >= capacity:
                            slot -= capacity
                        outq_ring[slot, k, f] = svc_proc[k, f]
                        if track_ready:
                            outq_ready[slot, k, f] = cycle + 1
                            if length == 0:
                                head_ready[k, f] = cycle + 1
                        if collect:
                            outq_wait[slot, k, f] = svc_wait[k, f]
                            if collect_serv:
                                outq_dur[slot, k, f] = svc_dur[k, f]
                        outq_len[k, f] = length + 1
                        if inq_len[k, f] > 0:
                            head = inq_head[k, f]
                            lane = inq_ring[head, k, f]
                            svc_active[k, f] = True
                            svc_proc[k, f] = lane
                            if geom_arr[f]:
                                u = access_buf[f, access_pos[f]]
                                access_pos[f] += 1
                                dur = 1 + int(
                                    math.log1p(-u) / log_access_arr[f]
                                )
                            else:
                                dur = r_arr[f]
                            svc_finish[k, f] = cycle + dur
                            if collect:
                                svc_wait[k, f] = cycle - issue[lane, f]
                                if collect_serv:
                                    svc_dur[k, f] = dur
                            head += 1
                            if head >= depth:
                                head -= depth
                            inq_head[k, f] = head
                            inq_len[k, f] -= 1
                    else:
                        stalled[k, f] = True
                        stalled_proc[k, f] = svc_proc[k, f]
                        if collect:
                            stalled_wait[k, f] = svc_wait[k, f]
                            if collect_serv:
                                stalled_dur[k, f] = svc_dur[k, f]

            # 4. the granted transfer completes at the end of the cycle.
            if do_request:
                i = win_i
                k = target[i, f]
                requesting[i, f] = False
                request_transfers[f] += 1
                # Post-event module state decides direct service vs
                # input buffering, exactly like the vector loop.
                if not (svc_active[k, f] or stalled[k, f]):
                    svc_active[k, f] = True
                    svc_proc[k, f] = i
                    if geom_arr[f]:
                        u = access_buf[f, access_pos[f]]
                        access_pos[f] += 1
                        dur = 1 + int(math.log1p(-u) / log_access_arr[f])
                    else:
                        dur = r_arr[f]
                    svc_finish[k, f] = cycle + dur
                    if collect:
                        svc_wait[k, f] = cycle - issue[i, f]
                        if collect_serv:
                            svc_dur[k, f] = dur
                else:
                    slot = inq_head[k, f] + inq_len[k, f]
                    if slot >= depth:
                        slot -= depth
                    inq_ring[slot, k, f] = i
                    inq_len[k, f] += 1
            if do_response:
                k = win_k
                head = outq_head[k, f]
                i = outq_ring[head, k, f]
                new_length = outq_len[k, f] - 1
                outq_len[k, f] = new_length
                nhead = head + 1
                if nhead >= capacity:
                    nhead -= capacity
                outq_head[k, f] = nhead
                if track_ready:
                    if new_length > 0:
                        head_ready[k, f] = outq_ready[nhead, k, f]
                    else:
                        head_ready[k, f] = _NEVER
                completions[f] += 1
                total = (cycle + 1) - issue[i, f]
                total_latency[f] += total
                if record:
                    ev_cycle[nev] = cycle
                    ev_row[nev] = f
                    ev_wait[nev] = outq_wait[head, k, f]
                    ev_total[nev] = total
                    if collect_serv:
                        ev_serv[nev] = outq_dur[head, k, f]
                    nev += 1
                if trace_rows[f]:
                    position = trace_pos[f, i]
                    tgt = trace_pad[f, i, position % trace_len[f, i]]
                    trace_pos[f, i] = position + 1
                else:
                    u = targets_buf[f, targets_pos[f]]
                    targets_pos[f] += 1
                    fraction = hot_fraction[f]
                    if u < fraction:
                        tgt = hot_module[f]
                    else:
                        drawn = int((u - fraction) * hot_rescale[f] * m)
                        if drawn > m - 1:
                            drawn = m - 1
                        tgt = drawn
                target[i, f] = tgt
                if has_think:
                    u = think_buf[f, think_pos[f]]
                    think_pos[f] += 1
                    failures = int(math.log1p(-u) / log1p_neg_p[f, i])
                    w = cycle + 1 + failures * pc_arr[f]
                    if w > _NEVER:
                        w = _NEVER
                    wake[i, f] = w
                else:
                    wake[i, f] = cycle + 1
                if stalled[k, f]:
                    # Stalled modules resolve exactly one cycle after
                    # the response grant that freed their slot.
                    resolve[k, f] = True
        cycle += 1
        done += 1
    return done, nev


_JIT_LOOPS = None


def _jit_loops():
    """Compile the scalar loops once per process (shared by instances)."""
    global _JIT_LOOPS
    if _JIT_LOOPS is None:
        import numba

        jit = numba.njit(cache=False, nogil=True)
        _JIT_LOOPS = (jit(_unbuffered_loop), jit(_buffered_loop))
    return _JIT_LOOPS


class NumbaBackend(BatchBackend):
    """JIT substrate (optional ``[batch-jit]`` extra, bit-identical).

    ``jit=False`` runs the same loop source interpreted - slower than
    the numpy program, but byte-for-byte the same results, which is how
    the equivalence suite exercises this backend without numba.
    """

    name = "numba"
    extra = "batch-jit"
    bitwise = True
    engine_token = BATCH_ENGINE_TOKEN
    supports_latency = True

    def __init__(self, jit: bool = True) -> None:
        self._jit = bool(jit)

    def available(self) -> bool:
        try:
            import numba  # noqa: F401
            import numpy  # noqa: F401
        except ImportError:
            return False
        return True

    def require(self):
        from repro.bus.batch import require_numpy

        np = require_numpy()
        if self._jit:
            try:
                import numba  # noqa: F401
            except ImportError:
                self._missing("numba")
        return np

    def _loops(self):
        if self._jit:
            return _jit_loops()
        return (_unbuffered_loop, _buffered_loop)

    # ------------------------------------------------------------------
    def _segment_state(self, kernel):
        """The chunked driver's shared state: streams plus the static
        argument prefix.

        Both scalar-loop signatures end with the same five event-buffer
        arguments; everything before them is identical between the
        serial driver and the row-parallel driver
        (:class:`~repro.bus.backends.numba_parallel_backend.NumbaParallelBackend`),
        so this helper builds that shared prefix once and each driver
        appends its own event tail.  Returns ``(streams, prefix)``
        where ``streams`` is the ``(lanes, per-cycle margin)`` list the
        driver refills between segments.
        """
        np = kernel._np
        fleet = kernel._fleet
        m = kernel._m
        collect = kernel._collect_latency
        collect_serv = kernel._collect_service
        record = kernel._sketch_total is not None
        geometric = kernel._geometric
        random_tie = kernel._random_tie
        track_ready = not random_tie

        lanes_list = [
            (kernel._targets_lanes, 1),
            (kernel._think_lanes, 1),
            (kernel._arb_lanes, 1),
            (kernel._access_lanes, 1 if not kernel._buffered else m + 2),
        ]
        streams = [(ln, margin) for ln, margin in lanes_list if ln is not None]
        chunk = streams[0][0]._chunk if streams else 1
        if geometric and kernel._buffered and m + 2 > chunk:
            raise ConfigurationError(
                f"backend='{self.name}' cannot buffer geometric access "
                f"draws for {m} memories (needs {m + 2} > {chunk} "
                "slots); use backend='numpy'"
            )

        dummy_buf = np.zeros((1, 1), dtype=np.float64)
        dummy_pos = np.zeros(1, dtype=np.int64)

        def stream_args(lanes):
            if lanes is None:
                return dummy_buf, dummy_pos
            return lanes._buf, lanes._pos

        targets_buf, targets_pos = stream_args(kernel._targets_lanes)
        think_buf, think_pos = stream_args(kernel._think_lanes)
        arb_buf, arb_pos = stream_args(kernel._arb_lanes)
        access_buf, access_pos = stream_args(kernel._access_lanes)

        if kernel._trace_pad is not None:
            trace_pad = kernel._trace_pad
            trace_len = kernel._trace_len
            trace_pos = kernel._trace_pos
        else:
            trace_pad = np.zeros((1, 1, 1), dtype=np.int32)
            trace_len = np.ones((1, 1), dtype=np.int64)
            trace_pos = np.zeros((1, 1), dtype=np.int64)

        workload_args = (
            kernel._trace_rows,
            trace_pad,
            trace_len,
            trace_pos,
            kernel._hot_fraction,
            kernel._hot_module,
            kernel._hot_rescale,
            kernel._log1p_neg_p,
            kernel._log_access_rows,
            chunk,
            kernel._targets_lanes is not None,
            targets_buf,
            targets_pos,
            kernel._think_lanes is not None,
            think_buf,
            think_pos,
            arb_buf,
            arb_pos,
            access_buf,
            access_pos,
        )
        counter_args = (
            kernel.completions,
            kernel.request_transfers,
            kernel.total_latency,
            kernel._busy_accum,
        )
        proc_args = (
            kernel._requesting,
            kernel._target,
            kernel._issue,
            kernel._wake,
        )
        if kernel._buffered:
            capacity = kernel._capacity
            depth = kernel._depth
            resolve = getattr(kernel, "_nb_resolve", None)
            if resolve is None:
                resolve = np.zeros((m, fleet), dtype=bool)
                kernel._nb_resolve = resolve
            dummy_ring = np.zeros((1, 1, 1), dtype=np.int32)
            dummy_mf = np.zeros((1, 1), dtype=np.int32)
            prefix = (
                kernel._n_rows,
                kernel._m_rows,
                fleet,
                kernel._r_rows,
                kernel._pc_rows,
                kernel._depth_rows,
                kernel._capacity_rows,
                kernel._proc_first,
                random_tie,
                track_ready,
                collect,
                collect_serv,
                record,
                geometric,
                kernel._geom_rows,
                *proc_args,
                kernel._svc_finish,
                kernel._svc_proc,
                kernel._svc_active,
                kernel._stalled,
                kernel._stalled_proc_flat.reshape(m, fleet),
                resolve,
                kernel._inq_ring.reshape(depth, m, fleet),
                kernel._inq_head.reshape(m, fleet),
                kernel._inq_len,
                kernel._outq_ring.reshape(capacity, m, fleet),
                kernel._outq_head.reshape(m, fleet),
                kernel._outq_len,
                kernel._outq_ready_ring.reshape(capacity, m, fleet)
                if track_ready
                else dummy_ring,
                kernel._head_ready if track_ready else dummy_mf,
                kernel._svc_wait_flat.reshape(m, fleet)
                if collect
                else dummy_mf,
                kernel._stalled_wait_flat.reshape(m, fleet)
                if collect
                else dummy_mf,
                kernel._outq_wait_ring.reshape(capacity, m, fleet)
                if collect
                else dummy_ring,
                kernel._svc_dur_flat.reshape(m, fleet)
                if collect_serv
                else dummy_mf,
                kernel._stalled_dur_flat.reshape(m, fleet)
                if collect_serv
                else dummy_mf,
                kernel._outq_dur_ring.reshape(capacity, m, fleet)
                if collect_serv
                else dummy_ring,
                *counter_args,
                *workload_args,
            )
        else:
            dummy_mf = np.zeros((1, 1), dtype=np.int32)
            prefix = (
                kernel._n_rows,
                kernel._m_rows,
                fleet,
                kernel._r_rows,
                kernel._pc_rows,
                kernel._proc_first,
                random_tie,
                track_ready,
                collect,
                collect_serv,
                record,
                geometric,
                kernel._geom_rows,
                *proc_args,
                kernel._svc_finish,
                kernel._svc_proc,
                kernel._module_free,
                kernel._out_full,
                kernel._out_proc,
                kernel._out_ready,
                kernel._out_wait_flat.reshape(m, fleet)
                if collect
                else dummy_mf,
                kernel._out_dur_flat.reshape(m, fleet)
                if collect_serv
                else dummy_mf,
                *counter_args,
                *workload_args,
            )
        return streams, prefix

    def advance(self, kernel, count: int) -> None:
        """Run ``count`` cycles through the scalar loop in segments."""
        np = kernel._np
        unbuffered_fn, buffered_fn = self._loops()
        loop = buffered_fn if kernel._buffered else unbuffered_fn
        fleet = kernel._fleet
        record = kernel._sketch_total is not None
        streams, prefix = self._segment_state(kernel)

        if record:
            ev_cap = max(fleet, 16384)
            events = getattr(kernel, "_nb_events", None)
            if events is None or len(events[0]) < ev_cap:
                events = tuple(
                    np.empty(ev_cap, dtype=np.int64) for _ in range(5)
                )
                kernel._nb_events = events
        else:
            ev_cap = 1
            events = tuple(np.empty(1, dtype=np.int64) for _ in range(5))
        static = prefix + (*events, ev_cap)

        done = 0
        while done < count:
            ran, nev = loop(count - done, kernel.cycle, *static)
            ran = int(ran)
            nev = int(nev)
            kernel.cycle += ran
            done += ran
            if nev:
                self._replay_events(kernel, events, nev)
            if done < count:
                refilled = False
                for lanes, margin in streams:
                    need = lanes._pos > lanes._chunk - margin
                    if need.any():
                        lanes._refill(need)
                        refilled = True
                if ran == 0 and nev == 0 and not refilled:
                    raise RuntimeError(
                        "numba batch loop made no progress; this is a bug"
                    )

    @staticmethod
    def _replay_events(kernel, events, nev):
        """Feed spilled latency events into the host-side sketches.

        Replays exactly the per-cycle add-call sequence the numpy
        program performs (grant rows ascending, total then wait), so
        sketch contents stay bit-identical.
        """
        np = kernel._np
        ev_cycle, ev_row, ev_wait, ev_total, ev_serv = events
        sketch_total = kernel._sketch_total
        sketch_wait = kernel._sketch_wait
        sketch_service = kernel._sketch_service
        boundaries = np.flatnonzero(np.diff(ev_cycle[:nev])) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
        ends = np.concatenate((boundaries, np.array([nev], dtype=np.int64)))
        for start, end in zip(starts, ends):
            rows = ev_row[start:end]
            sketch_total.add(rows, ev_total[start:end])
            sketch_wait.add(rows, ev_wait[start:end])
            if sketch_service is not None:
                sketch_service.add(rows, ev_serv[start:end])
