"""The :class:`BatchBackend` protocol and the batch engine-token registry.

A backend is the *array substrate* the batch kernel's lockstep program
runs on: it supplies the array namespace (`numpy`, or a drop-in like
`cupy`), the per-row Philox stream adapter, capability declarations
(can this substrate feed the host-side latency sketches?), and - the
piece that actually differs between substrates - the ``advance``
strategy that executes the per-cycle loop.

Engine tokens live here (not in :mod:`repro.bus.batch`) so the cache
layer can map a backend name to its namespace without importing the
kernel: **bit-identical backends share a token** (numpy and numba both
produce the exact bytes of ``simulation-batch@1``, so their cache
entries are interchangeable), while a backend that is only
statistically equivalent (cupy's Philox variant draws different bits)
owns a separate namespace and can never collide.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ConfigurationError

BATCH_ENGINE_TOKEN = "simulation-batch@1"
"""Versioned engine token for bit-identical batch-kernel cache entries.

The batch kernel is reproducible in itself but not bit-identical to the
exact kernels, so - unlike the ``fast`` lever - it owns a cache
namespace: bump the version when the batch kernel's numerical semantics
change, and only batch entries are retired.  The numpy and numba
backends both live here because they are proven bit-identical
(``tests/properties/test_backend_equivalence.py``)."""

CUPY_ENGINE_TOKEN = "simulation-batch-cupy@1"
"""Engine token for the GPU backend's cache entries.

CuPy's counter-based Philox generator is not the bit generator numpy
ships, so cupy results are only statistically equivalent to
``simulation-batch@1`` bytes - they get their own namespace instead of
polluting the bit-identical one."""

_DIST = "repro-single-bus"


class BatchBackend:
    """One array substrate the batch kernel can execute on.

    Subclasses declare:

    ``name``
        The registry key (``--backend`` value).
    ``extra``
        The pip extra that installs the substrate, named in the
        :class:`ConfigurationError` raised when it is missing - never a
        silent fallback to another backend.
    ``bitwise``
        Whether results are bit-identical to the numpy backend.
        Bit-identical backends share :data:`BATCH_ENGINE_TOKEN`;
        others must declare their own ``engine_token``.
    ``engine_token``
        The cache namespace results land in.
    ``supports_latency``
        Whether the backend can feed the host-side
        :class:`~repro.metrics.FleetQuantileSketch` histograms.
    """

    name: str = ""
    extra: str = ""
    bitwise: bool = True
    engine_token: str = BATCH_ENGINE_TOKEN
    supports_latency: bool = True

    # -- availability ---------------------------------------------------
    def available(self) -> bool:
        """Whether every module this substrate needs is importable."""
        raise NotImplementedError

    def require(self):
        """Import and return the array namespace, or raise naming the extra."""
        raise NotImplementedError

    def _missing(self, module: str):
        """The loud rejection every backend raises for an absent module."""
        raise ConfigurationError(
            f"backend='{self.name}' requires {module}, an optional "
            "dependency of this package; install it with "
            f"pip install '{_DIST}[{self.extra}]' "
            "(or use backend='numpy', the default)"
        ) from None

    # -- randomness -----------------------------------------------------
    def philox_generators(self, keys: Sequence[int]):
        """One counter-based Philox generator per fleet row.

        The default builds them from the backend's own array namespace,
        which works for any namespace exposing numpy's
        ``random.Generator``/``random.Philox`` pair.
        """
        xp = self.require()
        return [
            xp.random.Generator(xp.random.Philox(key=int(key)))
            for key in keys
        ]

    # -- capabilities ---------------------------------------------------
    def check_features(self, *, metrics: Sequence[str] = ()) -> None:
        """Reject requests this substrate cannot serve, loudly."""
        if "latency" in metrics and not self.supports_latency:
            raise ConfigurationError(
                f"backend='{self.name}' cannot collect latency "
                "distributions (the per-row quantile sketches are "
                "host-side); use backend='numpy' or backend='numba'"
            )

    # -- host transfer --------------------------------------------------
    def asnumpy(self, array):
        """Bring a backend array to host memory (identity on CPU)."""
        return array

    # -- execution ------------------------------------------------------
    def advance(self, kernel, count: int) -> None:
        """Advance ``kernel`` by ``count`` cycles on this substrate.

        The default runs the kernel's own vectorized array program,
        which is substrate-agnostic; backends with a faster execution
        strategy (numba's compiled scalar loop) override this.
        """
        if kernel._buffered:
            kernel._advance_buffered(count)
        else:
            kernel._advance_unbuffered(count)
