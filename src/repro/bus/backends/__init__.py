"""Pluggable array backends for the batch kernel.

The batch kernel is a pure array program over ``(lanes, fleet)`` state;
this package supplies the substrates it can execute on, selected the
way kernels are today - by name, validated at compile time against the
:data:`KNOWN_BACKENDS` table, rejected loudly when the substrate or a
requested capability is missing (never a silent fallback):

``numpy``
    The default: the kernel's native vectorized program.  Defines the
    ``simulation-batch@1`` cache namespace.
``numba``
    JIT-compiled scalar cycle loop over the same state arrays
    (``[batch-jit]`` extra).  **Bit-identical** to numpy - proven by
    ``tests/properties/test_backend_equivalence.py`` - so it shares the
    ``simulation-batch@1`` namespace: cached entries are
    interchangeable between the two.
``numba-parallel``
    The same JIT loop bodies distributed over fleet rows with
    ``numba.prange`` (``[batch-jit]`` extra).  Fleet rows are fully
    independent, so each thread replays the serial statement sequence
    for its rows exactly: still **bit-identical**, still the
    ``simulation-batch@1`` namespace.  ``NUMBA_NUM_THREADS`` bounds
    the pool.
``cupy``
    The same array program on GPU device arrays (``[batch-gpu]``
    extra).  Statistically - not bit - equivalent (different Philox
    implementation), so it owns the ``simulation-batch-cupy@1``
    namespace and is gated by the Welch machinery.

:func:`get_backend` also passes :class:`BatchBackend` instances
through, so callers can inject configured instances (the equivalence
suite runs ``NumbaBackend(jit=False)`` to prove bit-identity without
numba installed).
"""

from __future__ import annotations

from repro.bus.backends.base import (
    BATCH_ENGINE_TOKEN,
    CUPY_ENGINE_TOKEN,
    BatchBackend,
)
from repro.bus.backends.cupy_backend import CupyBackend
from repro.bus.backends.numba_backend import NumbaBackend
from repro.bus.backends.numba_parallel_backend import NumbaParallelBackend
from repro.bus.backends.numpy_backend import NumpyBackend
from repro.core.errors import ConfigurationError

__all__ = [
    "BATCH_ENGINE_TOKEN",
    "CUPY_ENGINE_TOKEN",
    "DEFAULT_BACKEND",
    "KNOWN_BACKENDS",
    "BatchBackend",
    "CupyBackend",
    "NumbaBackend",
    "NumbaParallelBackend",
    "NumpyBackend",
    "backend_engine_token",
    "check_backend",
    "get_backend",
]

DEFAULT_BACKEND = "numpy"
"""The backend every batch entry point uses unless told otherwise."""

KNOWN_BACKENDS = ("numpy", "numba", "numba-parallel", "cupy")
"""Every registered backend name, in documentation order.

The compile-time validation table: ``compile_scenario`` and the
``scenario`` CLI reject names outside this tuple before any work unit
exists, mirroring ``KNOWN_KERNELS``."""

_REGISTRY: dict[str, BatchBackend] = {
    "numpy": NumpyBackend(),
    "numba": NumbaBackend(),
    "numba-parallel": NumbaParallelBackend(),
    "cupy": CupyBackend(),
}


def get_backend(backend: str | BatchBackend) -> BatchBackend:
    """Resolve a backend name (or pass an instance through).

    Unknown names raise :class:`ConfigurationError` naming the known
    table - resolution never guesses or falls back.
    """
    if isinstance(backend, BatchBackend):
        return backend
    try:
        return _REGISTRY[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown batch backend {backend!r}; "
            f"known backends: {', '.join(KNOWN_BACKENDS)}"
        ) from None


def backend_engine_token(backend: str | BatchBackend) -> str:
    """The cache namespace a backend's results land in.

    Bit-identical backends (numpy, numba) share
    :data:`BATCH_ENGINE_TOKEN`; statistically-equivalent ones own their
    token, so cache entries can never cross the equivalence boundary.
    """
    return get_backend(backend).engine_token


def check_backend(
    kernel: str,
    backend: str | BatchBackend,
    metrics=(),
) -> None:
    """Compile-time backend validation shared by CLI and compiler.

    Rejects unknown names, a non-default backend on a non-batch kernel
    (backends are the batch kernel's array substrate - other kernels
    have none to swap), and capability mismatches (cupy cannot feed the
    host-side latency sketches).
    """
    resolved = get_backend(backend)
    if resolved.name != DEFAULT_BACKEND and kernel != "batch":
        raise ConfigurationError(
            f"backend='{resolved.name}' selects the batch kernel's "
            f"array substrate and requires kernel='batch'; "
            f"got kernel={kernel!r}"
        )
    if kernel == "batch":
        resolved.check_features(metrics=metrics)
