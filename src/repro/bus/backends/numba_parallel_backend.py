"""The row-parallel JIT backend: fleet rows under ``numba.prange``.

The serial numba backend compiles the cycle loop but still walks the
fleet one row at a time, so a 512-row fleet burns one core.  Fleet rows
are **fully independent** by the reproducibility contract - each row
owns its counter-based Philox streams, its buffers and positions, and
every state array is row-indexed - so the loop nest can be interchanged
(rows outermost) and the row loop distributed over threads with
``prange``.  Each thread then executes, for its rows, *exactly* the
statement sequence the serial loop executes for those rows, which is
what keeps this backend **bit-identical** to numpy and numba (proven by
``tests/properties/test_backend_equivalence.py``) and lets it share the
``simulation-batch@1`` cache namespace with no token bump.

Loop interchange needs one structural change: the serial loops check
stream headroom and event capacity *per cycle* and bail back to the
Python driver, a global early-exit that rows running concurrently
cannot coordinate.  The parallel driver instead **precomputes** the
largest segment every row can run safely - ``min((chunk - pos) //
margin)`` over rows and streams, capped by the per-row event stride -
refills the short rows first, and enters the loop with no in-loop stop
conditions at all.  Because ``Generator.random(k)`` splits compose
sequentially, moving refills earlier never changes the values drawn.

Latency events are spilled into **per-row slices** of a flat buffer
(row ``f`` owns ``[f * stride, f * stride + row_nev[f])``), so threads
never contend on one cursor; the host replay gathers the slices in
ascending-row order, stable-sorts by cycle, and feeds the sketches the
exact per-cycle, rows-ascending, total-then-wait add sequence the numpy
program performs.

Like the serial backend, the loops are valid plain Python:
``numba.prange`` degrades to ``range`` outside JIT compilation (and a
plain ``range`` stands in where numba is not importable), so
``NumbaParallelBackend(jit=False)`` runs interpreted for the
equivalence suite on hosts without numba.
"""

from __future__ import annotations

import math

from repro.bus.backends.numba_backend import NumbaBackend

try:  # pragma: no cover - exercised only where numba is installed
    from numba import prange
except ImportError:  # numba.prange behaves as range outside JIT anyway
    prange = range

_NEVER = 1 << 30


# ----------------------------------------------------------------------
# Row-parallel scalar loops.  The per-row bodies are verbatim copies of
# the serial loops' bodies (see numba_backend.py) with the loop nest
# interchanged; the last six arguments replace the serial event tail
# (ev_cycle, ev_row, ev_wait, ev_total, ev_serv, ev_cap) with
# per-row-sliced buffers (ev_cycle, ev_wait, ev_total, ev_serv,
# ev_stride, row_nev).  The driver guarantees the segment fits every
# stream and event slice, so there are no in-loop stop checks.
# ----------------------------------------------------------------------
def _unbuffered_loop_rows(
    count,
    cycle0,
    n_arr,
    m_arr,
    fleet,
    r_arr,
    pc_arr,
    proc_first,
    random_tie,
    track_ready,
    collect,
    collect_serv,
    record,
    geometric,
    geom_arr,
    requesting,
    target,
    issue,
    wake,
    svc_finish,
    svc_proc,
    module_free,
    out_full,
    out_proc,
    out_ready,
    out_wait,
    out_dur,
    completions,
    request_transfers,
    total_latency,
    busy_accum,
    trace_rows,
    trace_pad,
    trace_len,
    trace_pos,
    hot_fraction,
    hot_module,
    hot_rescale,
    log1p_neg_p,
    log_access_arr,
    chunk,
    has_targets,
    targets_buf,
    targets_pos,
    has_think,
    think_buf,
    think_pos,
    arb_buf,
    arb_pos,
    access_buf,
    access_pos,
    ev_cycle,
    ev_wait,
    ev_total,
    ev_serv,
    ev_stride,
    row_nev,
):
    for f in prange(fleet):
        # Per-row shape bounds: packed fleets pad to the group maxima,
        # but each row only ever scans its own extent.
        n = n_arr[f]
        m = m_arr[f]
        nev = 0
        base = f * ev_stride
        cycle = cycle0
        for _ in range(count):
            # 1. processor-cycle boundaries: waking processors issue.
            for i in range(n):
                if wake[i, f] == cycle:
                    issue[i, f] = cycle
                    requesting[i, f] = True
                    wake[i, f] = _NEVER

            # 2. arbitration on the pre-tick state (winners are fixed
            #    before this cycle's completions mutate the slots).
            n_count = 0
            for i in range(n):
                if requesting[i, f] and module_free[target[i, f], f]:
                    n_count += 1
            m_count = 0
            for k in range(m):
                if out_full[k, f]:
                    m_count += 1
            u_arb = 0.0
            if random_tie:
                # One draw per row per cycle, consumed unconditionally
                # (the numpy arbiter's take_all does the same).
                u_arb = arb_buf[f, arb_pos[f]]
                arb_pos[f] += 1
            if proc_first:
                do_request = n_count > 0
                do_response = m_count > 0 and n_count == 0
            else:
                do_response = m_count > 0
                do_request = n_count > 0 and m_count == 0
            win_i = 0
            if do_request:
                if random_tie:
                    pick = int(u_arb * n_count)
                    seen = 0
                    for i in range(n):
                        if requesting[i, f] and module_free[target[i, f], f]:
                            if seen == pick:
                                win_i = i
                                break
                            seen += 1
                else:
                    best = _NEVER
                    for i in range(n):
                        if (
                            requesting[i, f]
                            and module_free[target[i, f], f]
                            and issue[i, f] < best
                        ):
                            best = issue[i, f]
                            win_i = i
            win_k = 0
            if do_response:
                if random_tie:
                    pick = int(u_arb * m_count)
                    seen = 0
                    for k in range(m):
                        if out_full[k, f]:
                            if seen == pick:
                                win_k = k
                                break
                            seen += 1
                else:
                    best = _NEVER
                    for k in range(m):
                        if out_full[k, f] and out_ready[k, f] < best:
                            best = out_ready[k, f]
                            win_k = k

            # 3. module completions this cycle.
            for k in range(m):
                if svc_finish[k, f] == cycle:
                    out_full[k, f] = True
                    out_proc[k, f] = svc_proc[k, f]
                    if track_ready:
                        out_ready[k, f] = cycle + 1

            # 4. the granted transfer completes at the end of the cycle.
            if do_request:
                i = win_i
                k = target[i, f]
                requesting[i, f] = False
                request_transfers[f] += 1
                module_free[k, f] = False
                svc_proc[k, f] = i
                if geom_arr[f]:
                    u = access_buf[f, access_pos[f]]
                    access_pos[f] += 1
                    dur = 1 + int(math.log1p(-u) / log_access_arr[f])
                else:
                    dur = r_arr[f]
                svc_finish[k, f] = cycle + dur
                if collect:
                    out_wait[k, f] = cycle - issue[i, f]
                    if collect_serv:
                        out_dur[k, f] = dur
                busy_accum[f] += dur
            if do_response:
                k = win_k
                i = out_proc[k, f]
                out_full[k, f] = False
                module_free[k, f] = True
                completions[f] += 1
                total = (cycle + 1) - issue[i, f]
                total_latency[f] += total
                if record:
                    ev_cycle[base + nev] = cycle
                    ev_wait[base + nev] = out_wait[k, f]
                    ev_total[base + nev] = total
                    if collect_serv:
                        ev_serv[base + nev] = out_dur[k, f]
                    nev += 1
                if trace_rows[f]:
                    position = trace_pos[f, i]
                    tgt = trace_pad[f, i, position % trace_len[f, i]]
                    trace_pos[f, i] = position + 1
                else:
                    u = targets_buf[f, targets_pos[f]]
                    targets_pos[f] += 1
                    fraction = hot_fraction[f]
                    if u < fraction:
                        tgt = hot_module[f]
                    else:
                        drawn = int((u - fraction) * hot_rescale[f] * m)
                        if drawn > m - 1:
                            drawn = m - 1
                        tgt = drawn
                target[i, f] = tgt
                if has_think:
                    u = think_buf[f, think_pos[f]]
                    think_pos[f] += 1
                    failures = int(math.log1p(-u) / log1p_neg_p[f, i])
                    w = cycle + 1 + failures * pc_arr[f]
                    if w > _NEVER:
                        w = _NEVER
                    wake[i, f] = w
                else:
                    wake[i, f] = cycle + 1
            cycle += 1
        row_nev[f] = nev


def _buffered_loop_rows(
    count,
    cycle0,
    n_arr,
    m_arr,
    fleet,
    r_arr,
    pc_arr,
    depth_arr,
    capacity_arr,
    proc_first,
    random_tie,
    track_ready,
    collect,
    collect_serv,
    record,
    geometric,
    geom_arr,
    requesting,
    target,
    issue,
    wake,
    svc_finish,
    svc_proc,
    svc_active,
    stalled,
    stalled_proc,
    resolve,
    inq_ring,
    inq_head,
    inq_len,
    outq_ring,
    outq_head,
    outq_len,
    outq_ready,
    head_ready,
    svc_wait,
    stalled_wait,
    outq_wait,
    svc_dur,
    stalled_dur,
    outq_dur,
    completions,
    request_transfers,
    total_latency,
    busy_accum,
    trace_rows,
    trace_pad,
    trace_len,
    trace_pos,
    hot_fraction,
    hot_module,
    hot_rescale,
    log1p_neg_p,
    log_access_arr,
    chunk,
    has_targets,
    targets_buf,
    targets_pos,
    has_think,
    think_buf,
    think_pos,
    arb_buf,
    arb_pos,
    access_buf,
    access_pos,
    ev_cycle,
    ev_wait,
    ev_total,
    ev_serv,
    ev_stride,
    row_nev,
):
    for f in prange(fleet):
        # Per-row shape bounds (see the unbuffered loop); ring wraps
        # use the row's own depth/capacity while the ring arrays are
        # dimensioned to the pack maxima.
        n = n_arr[f]
        m = m_arr[f]
        depth = depth_arr[f]
        capacity = capacity_arr[f]
        nev = 0
        base = f * ev_stride
        cycle = cycle0
        for _ in range(count):
            # 1. processor-cycle boundaries: waking processors issue.
            for i in range(n):
                if wake[i, f] == cycle:
                    issue[i, f] = cycle
                    requesting[i, f] = True
                    wake[i, f] = _NEVER

            # Busy accounting: one count per module serving this cycle
            # (pre-tick, like the vector loop's svc_active reduction).
            active = 0
            for k in range(m):
                if svc_active[k, f]:
                    active += 1
            busy_accum[f] += active

            # 2. arbitration on the pre-tick state.
            n_count = 0
            for i in range(n):
                k = target[i, f]
                if requesting[i, f] and not (
                    (svc_active[k, f] or stalled[k, f])
                    and inq_len[k, f] >= depth
                ):
                    n_count += 1
            m_count = 0
            for k in range(m):
                if outq_len[k, f] > 0:
                    m_count += 1
            u_arb = 0.0
            if random_tie:
                u_arb = arb_buf[f, arb_pos[f]]
                arb_pos[f] += 1
            if proc_first:
                do_request = n_count > 0
                do_response = m_count > 0 and n_count == 0
            else:
                do_response = m_count > 0
                do_request = n_count > 0 and m_count == 0
            win_i = 0
            if do_request:
                if random_tie:
                    pick = int(u_arb * n_count)
                    seen = 0
                    for i in range(n):
                        k = target[i, f]
                        if requesting[i, f] and not (
                            (svc_active[k, f] or stalled[k, f])
                            and inq_len[k, f] >= depth
                        ):
                            if seen == pick:
                                win_i = i
                                break
                            seen += 1
                else:
                    best = _NEVER
                    for i in range(n):
                        k = target[i, f]
                        if (
                            requesting[i, f]
                            and not (
                                (svc_active[k, f] or stalled[k, f])
                                and inq_len[k, f] >= depth
                            )
                            and issue[i, f] < best
                        ):
                            best = issue[i, f]
                            win_i = i
            win_k = 0
            if do_response:
                if random_tie:
                    pick = int(u_arb * m_count)
                    seen = 0
                    for k in range(m):
                        if outq_len[k, f] > 0:
                            if seen == pick:
                                win_k = k
                                break
                            seen += 1
                else:
                    best = _NEVER
                    for k in range(m):
                        if outq_len[k, f] > 0 and head_ready[k, f] < best:
                            best = head_ready[k, f]
                            win_k = k

            # 3. module events: stall resolutions scheduled by last
            #    cycle's response grants, then service completions.
            for k in range(m):
                if resolve[k, f]:
                    resolve[k, f] = False
                    length = outq_len[k, f]
                    slot = outq_head[k, f] + length
                    if slot >= capacity:
                        slot -= capacity
                    outq_ring[slot, k, f] = stalled_proc[k, f]
                    if track_ready:
                        outq_ready[slot, k, f] = cycle + 1
                        if length == 0:
                            head_ready[k, f] = cycle + 1
                    if collect:
                        outq_wait[slot, k, f] = stalled_wait[k, f]
                        if collect_serv:
                            outq_dur[slot, k, f] = stalled_dur[k, f]
                    outq_len[k, f] = length + 1
                    stalled[k, f] = False
                    if inq_len[k, f] > 0:
                        head = inq_head[k, f]
                        lane = inq_ring[head, k, f]
                        svc_active[k, f] = True
                        svc_proc[k, f] = lane
                        if geom_arr[f]:
                            u = access_buf[f, access_pos[f]]
                            access_pos[f] += 1
                            dur = 1 + int(math.log1p(-u) / log_access_arr[f])
                        else:
                            dur = r_arr[f]
                        svc_finish[k, f] = cycle + dur
                        if collect:
                            svc_wait[k, f] = cycle - issue[lane, f]
                            if collect_serv:
                                svc_dur[k, f] = dur
                        head += 1
                        if head >= depth:
                            head -= depth
                        inq_head[k, f] = head
                        inq_len[k, f] -= 1
            for k in range(m):
                if svc_finish[k, f] == cycle:
                    svc_active[k, f] = False
                    length = outq_len[k, f]
                    if length < capacity:
                        slot = outq_head[k, f] + length
                        if slot >= capacity:
                            slot -= capacity
                        outq_ring[slot, k, f] = svc_proc[k, f]
                        if track_ready:
                            outq_ready[slot, k, f] = cycle + 1
                            if length == 0:
                                head_ready[k, f] = cycle + 1
                        if collect:
                            outq_wait[slot, k, f] = svc_wait[k, f]
                            if collect_serv:
                                outq_dur[slot, k, f] = svc_dur[k, f]
                        outq_len[k, f] = length + 1
                        if inq_len[k, f] > 0:
                            head = inq_head[k, f]
                            lane = inq_ring[head, k, f]
                            svc_active[k, f] = True
                            svc_proc[k, f] = lane
                            if geom_arr[f]:
                                u = access_buf[f, access_pos[f]]
                                access_pos[f] += 1
                                dur = 1 + int(
                                    math.log1p(-u) / log_access_arr[f]
                                )
                            else:
                                dur = r_arr[f]
                            svc_finish[k, f] = cycle + dur
                            if collect:
                                svc_wait[k, f] = cycle - issue[lane, f]
                                if collect_serv:
                                    svc_dur[k, f] = dur
                            head += 1
                            if head >= depth:
                                head -= depth
                            inq_head[k, f] = head
                            inq_len[k, f] -= 1
                    else:
                        stalled[k, f] = True
                        stalled_proc[k, f] = svc_proc[k, f]
                        if collect:
                            stalled_wait[k, f] = svc_wait[k, f]
                            if collect_serv:
                                stalled_dur[k, f] = svc_dur[k, f]

            # 4. the granted transfer completes at the end of the cycle.
            if do_request:
                i = win_i
                k = target[i, f]
                requesting[i, f] = False
                request_transfers[f] += 1
                # Post-event module state decides direct service vs
                # input buffering, exactly like the vector loop.
                if not (svc_active[k, f] or stalled[k, f]):
                    svc_active[k, f] = True
                    svc_proc[k, f] = i
                    if geom_arr[f]:
                        u = access_buf[f, access_pos[f]]
                        access_pos[f] += 1
                        dur = 1 + int(math.log1p(-u) / log_access_arr[f])
                    else:
                        dur = r_arr[f]
                    svc_finish[k, f] = cycle + dur
                    if collect:
                        svc_wait[k, f] = cycle - issue[i, f]
                        if collect_serv:
                            svc_dur[k, f] = dur
                else:
                    slot = inq_head[k, f] + inq_len[k, f]
                    if slot >= depth:
                        slot -= depth
                    inq_ring[slot, k, f] = i
                    inq_len[k, f] += 1
            if do_response:
                k = win_k
                head = outq_head[k, f]
                i = outq_ring[head, k, f]
                new_length = outq_len[k, f] - 1
                outq_len[k, f] = new_length
                nhead = head + 1
                if nhead >= capacity:
                    nhead -= capacity
                outq_head[k, f] = nhead
                if track_ready:
                    if new_length > 0:
                        head_ready[k, f] = outq_ready[nhead, k, f]
                    else:
                        head_ready[k, f] = _NEVER
                completions[f] += 1
                total = (cycle + 1) - issue[i, f]
                total_latency[f] += total
                if record:
                    ev_cycle[base + nev] = cycle
                    ev_wait[base + nev] = outq_wait[head, k, f]
                    ev_total[base + nev] = total
                    if collect_serv:
                        ev_serv[base + nev] = outq_dur[head, k, f]
                    nev += 1
                if trace_rows[f]:
                    position = trace_pos[f, i]
                    tgt = trace_pad[f, i, position % trace_len[f, i]]
                    trace_pos[f, i] = position + 1
                else:
                    u = targets_buf[f, targets_pos[f]]
                    targets_pos[f] += 1
                    fraction = hot_fraction[f]
                    if u < fraction:
                        tgt = hot_module[f]
                    else:
                        drawn = int((u - fraction) * hot_rescale[f] * m)
                        if drawn > m - 1:
                            drawn = m - 1
                        tgt = drawn
                target[i, f] = tgt
                if has_think:
                    u = think_buf[f, think_pos[f]]
                    think_pos[f] += 1
                    failures = int(math.log1p(-u) / log1p_neg_p[f, i])
                    w = cycle + 1 + failures * pc_arr[f]
                    if w > _NEVER:
                        w = _NEVER
                    wake[i, f] = w
                else:
                    wake[i, f] = cycle + 1
                if stalled[k, f]:
                    # Stalled modules resolve exactly one cycle after
                    # the response grant that freed their slot.
                    resolve[k, f] = True
            cycle += 1
        row_nev[f] = nev


_JIT_PARALLEL_LOOPS = None

EVENT_STRIDE = 1024
"""Latency events each row can spill per segment (one per cycle max,
so segments are capped at this many cycles when recording)."""


def _jit_parallel_loops():
    """Compile the row-parallel loops once per process."""
    global _JIT_PARALLEL_LOOPS
    if _JIT_PARALLEL_LOOPS is None:
        import numba

        jit = numba.njit(parallel=True, cache=False, nogil=True)
        _JIT_PARALLEL_LOOPS = (
            jit(_unbuffered_loop_rows),
            jit(_buffered_loop_rows),
        )
    return _JIT_PARALLEL_LOOPS


class NumbaParallelBackend(NumbaBackend):
    """Threaded JIT substrate (``[batch-jit]`` extra, bit-identical).

    Inherits the serial numba backend's availability, token and feature
    surface - the two differ only in the loop bodies (``prange`` over
    rows) and the driver (precomputed segments, per-row event slices).
    ``NUMBA_NUM_THREADS`` bounds the thread pool as usual.
    """

    name = "numba-parallel"

    def _loops(self):
        if self._jit:
            return _jit_parallel_loops()
        return (_unbuffered_loop_rows, _buffered_loop_rows)

    # ------------------------------------------------------------------
    def advance(self, kernel, count: int) -> None:
        """Run ``count`` cycles in driver-precomputed parallel segments."""
        np = kernel._np
        unbuffered_fn, buffered_fn = self._loops()
        loop = buffered_fn if kernel._buffered else unbuffered_fn
        fleet = kernel._fleet
        record = kernel._sketch_total is not None
        streams, prefix = self._segment_state(kernel)

        row_nev = getattr(kernel, "_nbp_row_nev", None)
        if row_nev is None or len(row_nev) != fleet:
            row_nev = np.zeros(fleet, dtype=np.int64)
            kernel._nbp_row_nev = row_nev
        if record:
            ev_stride = EVENT_STRIDE
            events = getattr(kernel, "_nbp_events", None)
            if events is None or len(events[0]) != fleet * ev_stride:
                events = tuple(
                    np.empty(fleet * ev_stride, dtype=np.int64)
                    for _ in range(4)
                )
                kernel._nbp_events = events
        else:
            ev_stride = 1
            events = tuple(np.empty(1, dtype=np.int64) for _ in range(4))
        ev_cycle, ev_wait, ev_total, ev_serv = events

        done = 0
        while done < count:
            # Refill rows without headroom for even one cycle, then run
            # the largest segment every stream can sustain (the serial
            # loops' per-cycle stop checks, hoisted into the driver so
            # rows need no global coordination).
            seg = count - done
            for lanes, margin in streams:
                need = lanes._pos > lanes._chunk - margin
                if need.any():
                    lanes._refill(need)
                per_row = (lanes._chunk - lanes._pos) // margin
                seg = min(seg, int(per_row.min()))
            if record:
                seg = min(seg, ev_stride)
            if seg <= 0:
                raise RuntimeError(
                    "numba-parallel batch loop made no progress; "
                    "this is a bug"
                )
            loop(
                seg,
                kernel.cycle,
                *prefix,
                ev_cycle,
                ev_wait,
                ev_total,
                ev_serv,
                ev_stride,
                row_nev,
            )
            kernel.cycle += seg
            done += seg
            if record:
                self._replay_row_events(
                    kernel,
                    ev_cycle,
                    ev_wait,
                    ev_total,
                    ev_serv,
                    ev_stride,
                    row_nev,
                )

    @staticmethod
    def _replay_row_events(
        kernel, ev_cycle, ev_wait, ev_total, ev_serv, ev_stride, row_nev
    ):
        """Feed the per-row event slices into the host-side sketches.

        Gathers slices in ascending-row order and stable-sorts by
        cycle, which reproduces the serial replay's exact add sequence:
        cycles increasing, rows ascending within each cycle (each row
        records at most one event per cycle, so rows stay distinct per
        add call), totals before waits.
        """
        np = kernel._np
        total_events = int(row_nev.sum())
        if total_events == 0:
            return
        pieces = [
            (f, int(row_nev[f]))
            for f in range(kernel._fleet)
            if row_nev[f] > 0
        ]
        rows = np.repeat(
            np.array([f for f, _ in pieces], dtype=np.int64),
            np.array([count for _, count in pieces], dtype=np.int64),
        )
        cycles = np.concatenate(
            [ev_cycle[f * ev_stride : f * ev_stride + c] for f, c in pieces]
        )
        waits = np.concatenate(
            [ev_wait[f * ev_stride : f * ev_stride + c] for f, c in pieces]
        )
        totals = np.concatenate(
            [ev_total[f * ev_stride : f * ev_stride + c] for f, c in pieces]
        )
        sketch_service = kernel._sketch_service
        if sketch_service is not None:
            servs = np.concatenate(
                [
                    ev_serv[f * ev_stride : f * ev_stride + c]
                    for f, c in pieces
                ]
            )
        order = np.argsort(cycles, kind="stable")
        cycles = cycles[order]
        rows = rows[order]
        waits = waits[order]
        totals = totals[order]
        if sketch_service is not None:
            servs = servs[order]
        boundaries = np.flatnonzero(np.diff(cycles)) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
        ends = np.concatenate(
            (boundaries, np.array([len(cycles)], dtype=np.int64))
        )
        sketch_total = kernel._sketch_total
        sketch_wait = kernel._sketch_wait
        for start, end in zip(starts, ends):
            sketch_total.add(rows[start:end], totals[start:end])
            sketch_wait.add(rows[start:end], waits[start:end])
            if sketch_service is not None:
                sketch_service.add(rows[start:end], servs[start:end])
