"""The vectorized lockstep batch kernel: whole fleets as one array program.

:class:`FastBusKernel` made a *single* run roughly an order of magnitude
faster than the reference machine, but every run still pays a
Python-level cycle loop.  The sweeps that produce the paper's headline
curves (Figures 2/3/5/6, Tables 3/4) simulate the *same machine shape*
many times - across replications and across grid rows that differ only
in seed, request probability or workload parameter - and those runs are
embarrassingly parallel.  :class:`BatchBusKernel` executes such a fleet
in lockstep: one NumPy array program advances every row's machine
through the same bus cycle at once, so the per-cycle interpreter cost is
paid once per *fleet* instead of once per *run*.

State is held in arrays shaped ``(fleet, n)`` (requesting masks, wake
cycles, targets, issue stamps) and ``(fleet, m)`` (service countdowns,
buffer occupancy, output slots); arbitration is a masked argmin/argmax
per fleet row; memory completions are per-row countdown comparisons.

**Reproducibility contract.**  The batch kernel is *not* bit-identical
to the reference/fast pair - vectorized sampling necessarily draws
randomness differently (inverse-CDF geometric think times, single-draw
hot-spot targets, counter-based bit generators).  Its contract is
instead:

* **bit-reproducible against itself**: every fleet row's randomness
  comes from its own counter-based :class:`numpy.random.Philox` streams,
  keyed by the library's :func:`~repro.des.rng.derive_seed` scheme on
  the row's seed alone.  Rows never interact, so a row's result is a
  pure function of its own ``(config, workload, seed, cycles, warmup)``
  - independent of fleet composition, row order, ``--jobs`` and
  ``--shard i/k`` (property-tested in
  ``tests/properties/test_batch_invariance.py``);
* **statistically equivalent** to the exact kernels: EBW and mean
  latency agree within confidence bounds over a configuration fleet
  (``tests/integration/test_batch_statistics.py``).

Because the numbers differ from the exact kernels at the bit level, the
batch kernel - unlike ``fast`` - **does enter cache keys**: its results
are stored under the :data:`BATCH_ENGINE_TOKEN` engine namespace and can
never collide with ``simulation@1`` entries.

**Coverage.**  Declarative workloads only: uniform, hot-spot and trace
targets, heterogeneous per-processor ``p``, both priorities, both
tie-breaks, buffered and unbuffered modules at any depth, constant or
geometric access times (geometric draws come from the per-row
``"access-times"`` Philox stream via the inverse CDF - statistically
equivalent to the exact kernels' coin-flip loop, which is already the
batch contract).  Latency distributions are collected at fleet scale
through the vectorized per-row quantile sketch
(:class:`repro.metrics.FleetQuantileSketch`), including under
geometric access times (per-access service draws feed a third service
sketch); like every batch number they are statistically - not bit -
equivalent to the exact kernels' streaming summaries.  Custom
:class:`~repro.workloads.generators.TargetSampler` objects and
cycle-level trace sinks stay on the reference/fast machines;
:func:`check_batch_features` is the single authority that rejects them
with a message naming the unsupported feature.

**Fleet packing.**  Shape numbers - ``n``, ``m``, ``r`` and buffer
depth - are per-row state, so rows of *different* machine shapes pack
into one padded lockstep program (only :data:`PACK_FIELDS` must
match).  Every row is padded to the fleet maxima ``(max_n, max_m)``;
padded lanes are inert - never requesting, wake pinned at the never
sentinel, targets pinned to a valid module - and, crucially, **never
consume a random draw**, so each row's per-row Philox draw sequence is
bit-identical to the same row in an unpacked (homogeneous) fleet.
Packed results therefore share the :data:`BATCH_ENGINE_TOKEN`
namespace with no token bump (hypothesis-proven in
``tests/properties/test_fleet_packing.py``).

**Backends.**  The lockstep program runs on a pluggable array substrate
(:mod:`repro.bus.backends`): ``numpy`` (default), ``numba`` (the same
state arrays driven by a JIT-compiled scalar loop, bit-identical to
numpy) or ``cupy`` (GPU, statistically equivalent).  Bit-identical
backends share the :data:`BATCH_ENGINE_TOKEN` cache namespace; cupy
owns its own.

**Buffered fast path.**  Input and output queues are circular-buffer
index arrays (``(slots, m * fleet)`` rings plus per-module head/length
counters), so a push or pop is a flat fancy-indexed scatter over the
affected modules only - no per-cycle FIFO shifting - and stall
bookkeeping travels through the same flat index lists.

NumPy is an optional dependency (``pip install repro-single-bus[batch]``);
without it every batch entry point raises a
:class:`~repro.core.errors.ConfigurationError` naming the extra.
"""

from __future__ import annotations

from typing import Sequence

from repro.bus.backends import (
    BATCH_ENGINE_TOKEN,  # noqa: F401  (canonical home: backends.base)
    DEFAULT_BACKEND,
    BatchBackend,
    get_backend,
)
from repro.bus.system import (
    _DEFAULT_BATCHES,
    _DEFAULT_WARMUP_FRACTION,
    _resolve_request_probabilities,
)
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority, TieBreak
from repro.core.results import SimulationResult
from repro.des.rng import derive_seed
from repro.workloads.generators import (
    HotSpotTargets,
    TargetSampler,
    TraceTargets,
    UniformTargets,
)

BATCH_EXTRA = "batch"
"""Name of the optional dependency extra that provides numpy."""

SHAPE_FIELDS = (
    "processors",
    "memories",
    "memory_cycle_ratio",
    "priority",
    "tie_break",
    "buffered",
    "buffer_depth",
)
"""The :class:`SystemConfig` fields of one homogeneous lockstep shape.

Since fleet packing landed, only :data:`PACK_FIELDS` must actually be
shared by the rows of one kernel - ``processors``, ``memories``,
``memory_cycle_ratio`` and ``buffer_depth`` are per-row state (padded
lanes are inert and never consume a draw).  The full shape tuple
remains the *sub-fleet* identity used by invariance tests and by
``group_fleets``' unpacked grouping."""

PACK_FIELDS = (
    "priority",
    "tie_break",
    "buffered",
)
"""The :class:`SystemConfig` fields every row of one kernel must share.

Priority and tie-break select the arbitration branch and ``buffered``
selects the loop body, so they stay whole-kernel properties.  Shape
numbers (``n``, ``m``, ``r``, buffer depth) are per-row arrays: rows of
different shapes *pack* into one padded lockstep program.  Everything
else - seed, request probabilities, workload parameters - varies per
row; rows are fully independent simulations that merely share the
lockstep loop."""

_NEVER = 1 << 30
"""Wake/resolve sentinel: a cycle index no supported run ever reaches.

Cycle-indexed state lives in ``int32`` arrays (half the memory traffic
of ``int64`` on the hot loop), so one batch run is capped at ``2**30``
bus cycles - six orders of magnitude beyond the paper's windows."""

_CHUNK = 2048
"""Uniform draws buffered per row and stream between Philox refills."""


def numpy_available() -> bool:
    """Whether the optional numpy dependency is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def require_numpy():
    """Import and return numpy, or raise naming the install extra."""
    try:
        import numpy
    except ImportError:
        raise ConfigurationError(
            "kernel='batch' requires numpy, which is an optional "
            "dependency of this package; install it with "
            f"pip install 'repro-single-bus[{BATCH_EXTRA}]' "
            "(or use kernel='fast', which is pure stdlib)"
        ) from None
    return numpy


BATCH_METRICS = frozenset({"latency"})
"""Metric families the batch kernel can produce.

``latency`` is collected through the vectorized per-row quantile sketch
(:class:`repro.metrics.FleetQuantileSketch`): statistically equivalent
to the exact kernels' streaming summaries, not bit-identical - which is
already the batch kernel's contract for every number it emits."""


def check_batch_metrics(metrics: Sequence[str]) -> None:
    """Reject metric families the batch kernel cannot produce.

    Latency distributions are supported (sketch-based, statistically
    equivalent); anything else is rejected with a message naming the
    offending family.
    """
    unsupported = sorted(set(metrics) - BATCH_METRICS)
    if unsupported:
        raise ConfigurationError(
            "kernel='batch' does not support metric(s) "
            f"{', '.join(unsupported)}; use kernel='fast' "
            "(bit-identical to the reference machine)"
        )


def check_batch_features(
    *,
    metrics: Sequence[str] = (),
    geometric_access_times: bool = False,
    targets: TargetSampler | None = None,
    backend: str | BatchBackend = DEFAULT_BACKEND,
) -> None:
    """The one authority on what ``kernel='batch'`` cannot run.

    Raises :class:`ConfigurationError` naming the unsupported feature -
    never a silent fallback to another kernel or backend.  Called by
    :func:`repro.bus.simulate` at request time and by
    :func:`repro.scenarios.compiler.compile_scenario` at scenario load
    time, so unsupported sweeps fail before any cycle is simulated.
    Unknown backend names and backend capability mismatches (cupy
    cannot feed the host-side latency sketches) are rejected here too.
    """
    check_batch_metrics(metrics)
    get_backend(backend).check_features(metrics=metrics)
    if targets is not None:
        # Reuses the planner's type dispatch without building a plan.
        if not isinstance(
            targets, (UniformTargets, HotSpotTargets, TraceTargets)
        ):
            raise ConfigurationError(
                "the batch kernel supports the library's uniform, "
                "hot-spot and trace target samplers; got "
                f"{type(targets).__name__} - use kernel='reference' "
                "for custom samplers"
            )


def fleet_shape(config: SystemConfig) -> tuple:
    """The lockstep-compatibility key of a configuration.

    Two simulations can share one :class:`BatchBusKernel` exactly when
    their shapes are equal (and their measurement windows match - see
    :func:`repro.parallel.fleet.fleet_key`, which adds those fields).
    """
    return tuple(getattr(config, field) for field in SHAPE_FIELDS)


# ----------------------------------------------------------------------
# Per-row random streams.
# ----------------------------------------------------------------------
class _PhiloxLanes:
    """Per-row sequential uniform streams with vectorized consumption.

    Row ``f`` owns the counter-based Philox stream keyed by
    ``derive_seed(seed_f, name)`` and consumes it strictly sequentially,
    so its draw sequence is a pure function of its own seed - the
    foundation of the fleet-composition invariance contract.  Draws are
    buffered per row in a ``(fleet, chunk)`` block so one cycle's
    consumption across the whole fleet is a single fancy-indexing
    gather.
    """

    def __init__(
        self,
        backend: BatchBackend,
        keys: Sequence[int],
        chunk: int = _CHUNK,
    ) -> None:
        np = backend.require()
        self._np = np
        self._gens = backend.philox_generators(keys)
        self._chunk = chunk
        fleet = len(self._gens)
        self._buf = np.empty((fleet, chunk), dtype=np.float64)
        for f, gen in enumerate(self._gens):
            self._buf[f] = gen.random(chunk)
        self._pos = np.zeros(fleet, dtype=np.int64)

    def _refill(self, need_mask) -> None:
        """Slide each flagged row's unconsumed tail down and top up."""
        np = self._np
        for f in np.nonzero(need_mask)[0]:
            pos = int(self._pos[f])
            remaining = self._chunk - pos
            row = self._buf[f]
            if remaining:
                row[:remaining] = row[pos:]
            row[remaining:] = self._gens[f].random(self._chunk - remaining)
            self._pos[f] = 0

    def take_block(self, count: int):
        """``count`` sequential draws for every row -> (fleet, count).

        Requires the per-row pointers to be in lockstep (true before
        any :meth:`take_rows` call - the initial-condition draw), like
        :meth:`take_all`.
        """
        np = self._np
        pos = self._pos
        if pos[0] + count > self._chunk:
            self._refill(np.ones(len(self._gens), dtype=bool))
        values = self._buf[:, pos[0] : pos[0] + count].copy()
        pos += count
        return values

    def take_counts(self, counts):
        """``counts[f]`` sequential draws for row ``f`` -> (fleet, max).

        The per-row generalization of :meth:`take_block` for packed
        fleets: row ``f`` consumes exactly ``counts[f]`` draws, so its
        stream position is identical to an unpacked fleet's.  Column
        ``j`` of the result is row ``f``'s ``j``-th draw and is only
        meaningful for ``j < counts[f]`` (padding columns hold
        arbitrary buffered values that are never consumed).  Requires
        lockstep pointers like :meth:`take_block` (the
        initial-condition draw).
        """
        np = self._np
        pos = self._pos
        counts = np.asarray(counts, dtype=np.int64)
        if (pos + counts > self._chunk).any():
            self._refill(np.ones(len(self._gens), dtype=bool))
        max_count = int(counts.max())
        columns = pos[:, None] + np.arange(max_count)
        # Clamp padding columns into range; the values they alias are
        # not consumed (pos only advances by counts) and callers mask
        # them out.
        values = np.take_along_axis(
            self._buf, np.minimum(columns, self._chunk - 1), axis=1
        ).copy()
        pos += counts
        return values

    def take_rows(self, rows):
        """One draw for each listed row (rows must be unique)."""
        pos = self._pos
        taken = pos[rows]
        exhausted = taken >= self._chunk
        if exhausted.any():
            need = self._np.zeros(len(self._gens), dtype=bool)
            need[rows[exhausted]] = True
            self._refill(need)
            taken = pos[rows]
        values = self._buf[rows, taken]
        pos[rows] = taken + 1
        return values

    def take_rows_multi(self, rows):
        """One draw per listed row, where rows may repeat.

        A row listed ``k`` times receives its next ``k`` sequential
        draws *in list order* - the geometric-access pull sites list
        modules in ascending order per row, and the per-row draw
        sequence must not depend on how many modules pulled this cycle.
        """
        np = self._np
        pos = self._pos
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        count = len(sorted_rows)
        new_group = np.empty(count, dtype=bool)
        new_group[0] = True
        new_group[1:] = sorted_rows[1:] != sorted_rows[:-1]
        index = np.arange(count)
        offsets = index - np.maximum.accumulate(
            np.where(new_group, index, 0)
        )
        taken = pos[sorted_rows] + offsets
        exhausted = taken >= self._chunk
        if exhausted.any():
            need = np.zeros(len(self._gens), dtype=bool)
            need[sorted_rows[exhausted]] = True
            self._refill(need)
            taken = pos[sorted_rows] + offsets
        values = np.empty(count, dtype=np.float64)
        values[order] = self._buf[sorted_rows, taken]
        # Duplicate fancy writes resolve last-wins; the last occurrence
        # per row carries the highest pointer, which is what we want.
        pos[sorted_rows] = taken + 1
        return values

    def take_all(self):
        """One draw per row, for every row.

        The all-rows pointers advance in lockstep, so consumption is a
        cheap shared column read between refills.
        """
        pos = self._pos
        if pos[0] >= self._chunk:
            self._refill(self._np.ones(len(self._gens), dtype=bool))
        values = self._buf[:, pos[0]]
        pos += 1
        return values


# ----------------------------------------------------------------------
# Target plans: the declarative essence of one row's workload.
# ----------------------------------------------------------------------
def _plan_targets(targets: TargetSampler | None, config: SystemConfig):
    """Reduce a library sampler to ``(traces, hot_fraction, hot_module)``.

    ``traces`` is ``None`` for random-target rows.  Custom sampler
    objects are rejected - they encapsulate arbitrary Python and cannot
    be vectorized.
    """
    if targets is None or isinstance(targets, UniformTargets):
        return None, 0.0, 0
    if isinstance(targets, HotSpotTargets):
        return None, targets._hot_fraction, targets._hot_module
    if isinstance(targets, TraceTargets):
        return tuple(tuple(trace) for trace in targets._traces), 0.0, 0
    raise ConfigurationError(
        "the batch kernel supports the library's uniform, hot-spot "
        f"and trace target samplers; got {type(targets).__name__} - "
        "use kernel='reference' for custom samplers"
    )


class BatchBusKernel:
    """Lockstep NumPy implementation of a fleet of bus machines.

    Parameters
    ----------
    configs:
        One :class:`SystemConfig` per fleet row.  All rows must share
        the :data:`PACK_FIELDS` (priority, tie-break, buffering mode);
        shape numbers (``n``, ``m``, ``r``, buffer depth), request
        probabilities and workloads may differ per row - smaller rows
        are padded to the fleet maxima with inert lanes.
    seeds:
        One master seed per row; each row derives its own Philox
        streams (``targets`` / ``think`` / ``arbitration``) from it via
        :func:`~repro.des.rng.derive_seed`.
    targets:
        Optional per-row target samplers (library samplers only);
        ``None`` entries mean the paper's uniform workload.
    request_probabilities:
        Optional per-row heterogeneous-``p`` vectors, validated exactly
        like the reference machine's.
    collect_latency:
        When true, the loop carries each request's service-start stamp
        through the queue rings and records post-warmup wait/total
        observations into per-row :class:`FleetQuantileSketch`
        histograms; :meth:`run` then attaches a
        :class:`~repro.metrics.LatencyReport` to every row's result.
        Collection draws no randomness, so counters stay bit-identical
        either way.
    geometric_access_times:
        When true, every service duration on a row with ``r > 1`` is
        an inverse-CDF geometric draw with mean ``r`` from that row's
        ``"access-times"`` Philox stream instead of the constant ``r``
        (rows with ``r = 1`` keep the degenerate constant path and
        draw nothing).  Combines with ``collect_latency``: geometric
        rows' per-access durations feed a dedicated service sketch.
    backend:
        The array substrate to execute on: a registered name from
        :data:`repro.bus.backends.KNOWN_BACKENDS` or a
        :class:`~repro.bus.backends.BatchBackend` instance.  numpy and
        numba produce bit-identical results; cupy is statistically
        equivalent.  Missing substrates raise naming the install extra.

    :meth:`run` replicates the reference measurement protocol (warm-up
    exclusion, batch-means windows) per row and returns one
    :class:`~repro.core.results.SimulationResult` per row.
    """

    def __init__(
        self,
        configs: Sequence[SystemConfig],
        seeds: Sequence[int],
        targets: Sequence[TargetSampler | None] | None = None,
        request_probabilities: Sequence[Sequence[float] | None] | None = None,
        collect_latency: bool = False,
        geometric_access_times: bool = False,
        backend: str | BatchBackend = DEFAULT_BACKEND,
    ) -> None:
        self._backend = get_backend(backend)
        self._backend.check_features(
            metrics=("latency",) if collect_latency else ()
        )
        np = self._backend.require()
        self._np = np
        configs = list(configs)
        seeds = [int(seed) for seed in seeds]
        if not configs:
            raise ConfigurationError("a batch fleet needs at least one row")
        if len(seeds) != len(configs):
            raise ConfigurationError(
                f"fleet lists {len(configs)} configs but {len(seeds)} seeds"
            )
        if targets is None:
            targets = [None] * len(configs)
        if request_probabilities is None:
            request_probabilities = [None] * len(configs)
        if len(targets) != len(configs) or len(request_probabilities) != len(
            configs
        ):
            raise ConfigurationError(
                "targets and request_probabilities must list one entry "
                "per fleet row (or be None)"
            )
        pack = tuple(getattr(configs[0], field) for field in PACK_FIELDS)
        for config in configs[1:]:
            if tuple(getattr(config, field) for field in PACK_FIELDS) != pack:
                raise ConfigurationError(
                    "all fleet rows must share the pack fields "
                    f"{PACK_FIELDS}; {config.describe()} differs from "
                    f"{configs[0].describe()}"
                )
        self.configs = tuple(configs)
        self.seeds = tuple(seeds)

        base = configs[0]
        fleet = len(configs)
        # Per-row shape numbers: rows of different (n, m, r, depth)
        # pack into one padded lockstep program.  The scalar n/m keep
        # the *array* dimensions (the group maxima); lanes beyond a
        # row's own bound are inert padding.
        n_rows = np.array(
            [config.processors for config in configs], dtype=np.int64
        )
        m_rows = np.array(
            [config.memories for config in configs], dtype=np.int64
        )
        r_rows = np.array(
            [config.memory_cycle_ratio for config in configs],
            dtype=np.int64,
        )
        pc_rows = np.array(
            [config.processor_cycle for config in configs], dtype=np.int64
        )
        n = int(n_rows.max())
        m = int(m_rows.max())
        self._fleet = fleet
        self._n = n
        self._m = m
        self._n_rows = n_rows
        self._m_rows = m_rows
        self._r_rows = r_rows
        self._pc_rows = pc_rows
        self._buffered = base.buffered
        depth_rows = np.array(
            [
                config.buffer_depth if config.buffered else 0
                for config in configs
            ],
            dtype=np.int64,
        )
        self._depth_rows = depth_rows
        self._capacity_rows = np.maximum(depth_rows, 1)
        self._depth = int(depth_rows.max()) if base.buffered else 0
        self._capacity = self._depth if self._depth > 0 else 1
        self._proc_first = base.priority is Priority.PROCESSORS
        self._random_tie = base.tie_break is TieBreak.RANDOM
        # Lane-validity masks: lane i of row f is real iff i < n_f (and
        # module k iff k < m_f).  Padded lanes never request, never
        # wake, and never consume a draw - the padding invariant the
        # packed == unpacked bit-identity proof rests on.
        self._lane_valid = np.arange(n)[:, None] < n_rows[None, :]
        self._mod_valid = np.arange(m)[:, None] < m_rows[None, :]
        # r = 1 makes the geometric service distribution degenerate at
        # one cycle - identical to the constant path, so such rows draw
        # no stream (matching the exact kernels' r = 1 short-circuit).
        geom_rows = (
            (r_rows > 1)
            if geometric_access_times
            else np.zeros(fleet, dtype=bool)
        )
        self._geom_rows = geom_rows
        self._geometric = bool(geom_rows.any())
        safe_r = np.where(geom_rows, r_rows, 2)
        self._log_access_rows = np.where(
            geom_rows, np.log1p(-1.0 / safe_r), 0.0
        )

        # --- per-row request probabilities (fleet x n), padded lanes
        # at p = 1 (they never issue, so the value is never consulted,
        # but 1.0 keeps the all-p1 fast-path detection per-row exact).
        self._p = np.ones((fleet, n), dtype=np.float64)
        for f, (config, probs) in enumerate(
            zip(configs, request_probabilities)
        ):
            self._p[f, : config.processors] = (
                _resolve_request_probabilities(config, probs)
            )
        self._all_p1 = bool((self._p == 1.0).all())
        with np.errstate(divide="ignore"):
            # log(1 - p) is -inf at p = 1, which the inverse-CDF think
            # draw maps to 0 extra processor cycles - exactly right.
            self._log1p_neg_p = np.log1p(-self._p)

        # --- per-row target plans.
        plans = [
            _plan_targets(sampler, config)
            for sampler, config in zip(targets, configs)
        ]
        hot_fraction = np.array([plan[1] for plan in plans])
        hot_module = np.array([plan[2] for plan in plans], dtype=np.int32)
        trace_rows = np.array(
            [plan[0] is not None for plan in plans], dtype=bool
        )
        self._any_random = bool((~trace_rows).any())
        self._any_trace = bool(trace_rows.any())
        self._trace_rows = trace_rows
        self._hot_fraction = hot_fraction
        self._hot_module = hot_module
        # Single-draw hot-spot sampling: u < f hits the hot module, the
        # remainder rescales to a uniform module choice.  f = 0 is the
        # plain uniform draw; guard the f = 1 rescale against 0/0.
        denominator = np.where(hot_fraction < 1.0, 1.0 - hot_fraction, 1.0)
        self._hot_rescale = 1.0 / denominator
        if self._any_trace:
            length_max = 1
            for plan, config in zip(plans, configs):
                if plan[0] is not None:
                    row_n = config.processors
                    if len(plan[0]) < row_n:
                        raise ConfigurationError(
                            f"trace workload records {len(plan[0])} "
                            f"processors but the system has {row_n}"
                        )
                    length_max = max(
                        length_max, max(len(t) for t in plan[0][:row_n])
                    )
            pad = np.zeros((fleet, n, length_max), dtype=np.int32)
            lengths = np.ones((fleet, n), dtype=np.int64)
            for f, plan in enumerate(plans):
                if plan[0] is None:
                    continue
                for i in range(configs[f].processors):
                    trace = plan[0][i]
                    lengths[f, i] = len(trace)
                    pad[f, i, : len(trace)] = trace
            self._trace_pad = pad
            self._trace_len = lengths
            self._trace_pos = np.zeros((fleet, n), dtype=np.int64)
        else:
            self._trace_pad = None
            self._trace_len = None
            self._trace_pos = None

        # --- per-row Philox streams, keyed by the derive_seed scheme.
        self._targets_lanes = (
            _PhiloxLanes(
                self._backend,
                [derive_seed(seed, "targets") for seed in seeds],
            )
            if self._any_random
            else None
        )
        self._think_lanes = (
            _PhiloxLanes(
                self._backend,
                [derive_seed(seed, "think") for seed in seeds],
            )
            if not self._all_p1
            else None
        )
        self._arb_lanes = (
            _PhiloxLanes(
                self._backend,
                [derive_seed(seed, "arbitration") for seed in seeds],
            )
            if self._random_tie
            else None
        )
        self._access_lanes = (
            _PhiloxLanes(
                self._backend,
                [derive_seed(seed, "access-times") for seed in seeds],
            )
            if self._geometric
            else None
        )

        # --- processor state (n x fleet).  The fleet is the contiguous
        # axis, so every per-row reduction (any/cumsum/argmax along the
        # lane axis) runs axis-0 with a vectorized contiguous inner
        # loop.  A processor's ``issue`` stamp freezes while its request
        # is in flight, so module-side copies of the issue cycle are
        # unnecessary: the response path reads it back through the
        # owning processor's lane.
        # Padded lanes start (and stay) inert: not requesting, wake at
        # the never sentinel, target pinned to module 0 (a valid index,
        # so dense gathers through target_gidx stay in bounds).
        self._requesting = self._lane_valid.copy()
        self._target = np.zeros((n, fleet), dtype=np.int32)
        self._issue = np.zeros((n, fleet), dtype=np.int32)
        self._wake = np.full((n, fleet), _NEVER, dtype=np.int32)
        # Targets doubled as precomputed flat indices (module * fleet +
        # row) into raveled module state, maintained at each draw.
        self._target_gidx = np.zeros((n, fleet), dtype=np.int64)
        # With p = 1 everywhere the wake calendar degenerates: exactly
        # the processors granted a response wake one cycle later, so the
        # loop carries their flat lane indices instead of scanning the
        # calendar.
        self._pending_flat = None

        # --- module state (m x fleet; queues as flat circular buffers).
        self._collect_latency = bool(collect_latency)
        # Geometric service durations are drawn per access, so latency
        # collection must carry each request's actual duration through
        # the rings into a third sketch; constant-r rows keep the
        # exact synthesized service summary.
        self._collect_service = self._collect_latency and self._geometric
        self._sketch_wait = None
        self._sketch_total = None
        self._sketch_service = None
        flat_modules = m * fleet
        self._svc_finish = np.full((m, fleet), _NEVER, dtype=np.int32)
        self._svc_proc = np.zeros((m, fleet), dtype=np.int32)
        if self._buffered:
            depth = self._depth
            capacity = self._capacity
            track_ready = not self._random_tie
            self._svc_active = np.zeros((m, fleet), dtype=bool)
            # Queues are (slots, m * fleet) rings addressed by per-module
            # head/length counters: a push or pop touches only the
            # affected modules' slots (flat fancy indexing), never the
            # whole queue - the former per-cycle FIFO shifts are gone.
            self._inq_ring = np.zeros((depth, flat_modules), dtype=np.int32)
            self._inq_head = np.zeros(flat_modules, dtype=np.int32)
            self._inq_len = np.zeros((m, fleet), dtype=np.int32)
            self._outq_ring = np.zeros(
                (capacity, flat_modules), dtype=np.int32
            )
            self._outq_head = np.zeros(flat_modules, dtype=np.int32)
            self._outq_len = np.zeros((m, fleet), dtype=np.int32)
            self._stalled = np.zeros((m, fleet), dtype=bool)
            self._stalled_proc_flat = np.zeros(flat_modules, dtype=np.int32)
            # Modules scheduled to resolve a stall next cycle travel as
            # a flat index list (stall resolution is always "next
            # cycle", so no per-module resolve-cycle array is needed).
            self._resolve_flat = None
            if track_ready:
                # FCFS responses need the oldest-response ready cycle:
                # per-slot stamps in the ring plus a dense head-of-queue
                # mirror the arbiter reads, both maintained at the
                # sparse push/pop sites.
                self._outq_ready_ring = np.full(
                    (capacity, flat_modules), _NEVER, dtype=np.int32
                )
                self._head_ready = np.full(
                    (m, fleet), _NEVER, dtype=np.int32
                )
            else:
                self._outq_ready_ring = None
                self._head_ready = None
            if self._collect_latency:
                self._svc_wait_flat = np.zeros(flat_modules, dtype=np.int32)
                self._stalled_wait_flat = np.zeros(
                    flat_modules, dtype=np.int32
                )
                self._outq_wait_ring = np.zeros(
                    (capacity, flat_modules), dtype=np.int32
                )
            if self._collect_service:
                self._svc_dur_flat = np.zeros(flat_modules, dtype=np.int32)
                self._stalled_dur_flat = np.zeros(
                    flat_modules, dtype=np.int32
                )
                self._outq_dur_ring = np.zeros(
                    (capacity, flat_modules), dtype=np.int32
                )
        else:
            # Unbuffered: a module is a single request slot, so one
            # "fully idle" mask serves the whole acceptance rule and is
            # maintained incrementally at the two grant sites.
            self._module_free = np.ones((m, fleet), dtype=bool)
            self._out_full = np.zeros((m, fleet), dtype=bool)
            self._out_proc = np.zeros((m, fleet), dtype=np.int32)
            self._out_ready = np.full((m, fleet), _NEVER, dtype=np.int32)
            if self._collect_latency:
                self._out_wait_flat = np.zeros(flat_modules, dtype=np.int32)
            if self._collect_service:
                self._out_dur_flat = np.zeros(flat_modules, dtype=np.int32)

        # --- counters (per row).  Response transfers and completions
        # are one and the same event in this machine, so only one
        # counter is kept.
        self.cycle = 0
        self.completions = np.zeros(fleet, dtype=np.int64)
        self.request_transfers = np.zeros(fleet, dtype=np.int64)
        self.total_latency = np.zeros(fleet, dtype=np.int64)
        self._busy_accum = np.zeros(fleet, dtype=np.int64)

        # Flat views: the hot loop scatters and gathers through 1D
        # fancy indexing (index = lane * fleet + row) on raveled views
        # of the state arrays (the arrays are never reallocated, so the
        # views stay valid for the kernel's lifetime).
        self._requesting_flat = self._requesting.reshape(-1)
        self._target_flat = self._target.reshape(-1)
        self._target_gidx_flat = self._target_gidx.reshape(-1)
        self._issue_flat = self._issue.reshape(-1)
        self._wake_flat = self._wake.reshape(-1)
        self._svc_finish_flat = self._svc_finish.reshape(-1)
        self._svc_proc_flat = self._svc_proc.reshape(-1)
        if self._buffered:
            self._svc_active_flat = self._svc_active.reshape(-1)
            self._stalled_flat = self._stalled.reshape(-1)
            self._inq_len_flat = self._inq_len.reshape(-1)
            self._outq_len_flat = self._outq_len.reshape(-1)
        else:
            self._module_free_flat = self._module_free.reshape(-1)
            self._out_full_flat = self._out_full.reshape(-1)
            self._out_proc_flat = self._out_proc.reshape(-1)
            self._out_ready_flat = self._out_ready.reshape(-1)
        self._log1p_neg_p_flat = np.ascontiguousarray(
            self._log1p_neg_p.T
        ).reshape(-1)

        # Rank scratch for the tie-break cumulative counts, computed as
        # a lower-triangular float32 matmul (BLAS): per column the
        # product is the running candidate count, which NumPy's strided
        # axis-0 cumsum computes several times slower.  Counts are small
        # integers, exact in float32 far beyond any lane count.
        self._tril_n = np.tril(np.ones((n, n), dtype=np.float32))
        self._tril_m = np.tril(np.ones((m, m), dtype=np.float32))
        self._cand_n = np.empty((n, fleet), dtype=np.float32)
        self._cand_m = np.empty((m, fleet), dtype=np.float32)
        self._rank_n = np.empty((n, fleet), dtype=np.float32)
        self._rank_m = np.empty((m, fleet), dtype=np.float32)

        # Initial condition: every real processor issues at cycle 0,
        # its target drawn in lane order (the reference initial
        # condition); padded lanes are pinned to module 0.
        self._target[:] = self._initial_targets().T
        self._target[~self._lane_valid] = 0
        self._target_gidx[:] = (
            self._target.astype(np.int64) * fleet + np.arange(fleet)
        )

    # ------------------------------------------------------------------
    def _initial_targets(self):
        """Every real lane's first target, drawn in lane order per row.

        Row ``f`` consumes exactly ``n_f`` draws (its own lane count),
        so its targets stream position matches an unpacked fleet's;
        padding columns carry garbage the caller masks out.
        """
        np = self._np
        if self._any_random:
            u = self._targets_lanes.take_counts(self._n_rows)
            fraction = self._hot_fraction[:, None]
            m_col = self._m_rows[:, None]
            module = np.minimum(
                ((u - fraction) * self._hot_rescale[:, None] * m_col).astype(
                    np.int32
                ),
                (m_col - 1).astype(np.int32),
            )
            new_target = np.where(
                u < fraction, self._hot_module[:, None], module
            )
        else:
            new_target = None
        if self._any_trace:
            position = self._trace_pos % self._trace_len
            traced = np.take_along_axis(
                self._trace_pad, position[:, :, None], axis=2
            )[:, :, 0]
            self._trace_pos += 1
            if new_target is None:
                new_target = traced
            else:
                new_target = np.where(
                    self._trace_rows[:, None], traced, new_target
                )
        return new_target

    def _draw_target_rows(self, rows, lanes):
        """Next targets for one lane of each listed row.

        A row's targets are consumed strictly in its own grant order
        (one draw per completed request), which is row-local - the draw
        sequence never depends on fleet composition.  Drawing at
        response-grant time (instead of at the later wake cycle) keeps
        the hot loop free of masked 2D stream consumption.
        """
        np = self._np
        if self._any_random:
            if self._any_trace:
                random_rows = ~self._trace_rows[rows]
                u = np.empty(len(rows), dtype=np.float64)
                u[random_rows] = self._targets_lanes.take_rows(
                    rows[random_rows]
                )
                u[~random_rows] = 0.0
            else:
                u = self._targets_lanes.take_rows(rows)
            fraction = self._hot_fraction[rows]
            m_r = self._m_rows[rows]
            module = np.minimum(
                ((u - fraction) * self._hot_rescale[rows] * m_r).astype(
                    np.int32
                ),
                (m_r - 1).astype(np.int32),
            )
            drawn = np.where(u < fraction, self._hot_module[rows], module)
        else:
            drawn = None
        if self._any_trace:
            position = self._trace_pos[rows, lanes]
            traced = self._trace_pad[
                rows, lanes, position % self._trace_len[rows, lanes]
            ]
            self._trace_pos[rows, lanes] = position + 1
            if drawn is None:
                drawn = traced
            else:
                drawn = np.where(self._trace_rows[rows], traced, drawn)
        return drawn

    # ----------------------------------------------------------------------
    def _memory_busy(self):
        """Per-row module busy cycles through the last simulated cycle.

        Buffered fleets accumulate one count per module per
        cycle-in-service; unbuffered fleets charge the full (constant
        or drawn) service duration at service start and subtract the
        not-yet-worked remainder of in-flight services here.  Both
        match the reference accounting at every measurement boundary.
        """
        if self._buffered:
            return self._busy_accum.copy()
        np = self._np
        through = self.cycle - 1
        svc_finish = self._svc_finish
        in_flight = (svc_finish > through) & (svc_finish < _NEVER)
        remainder = np.where(in_flight, svc_finish - through, 0)
        return self._busy_accum - remainder.sum(axis=0)

    # ------------------------------------------------------------------
    def advance(self, count: int) -> None:
        """Advance every fleet row by ``count`` bus cycles in lockstep.

        The loop body is deliberately written as a small number of
        whole-fleet array operations - dense masked writes over
        ``(lanes, fleet)`` blocks for the frequent events and flat 1D
        fancy indexing for the sparse per-row grant bookkeeping - with
        the fleet as the contiguous axis, so per-row reductions
        vectorize across rows.  Per cycle the cost is a fixed number of
        NumPy dispatches; per *row* it therefore shrinks roughly
        linearly with fleet size.
        """
        if count <= 0:
            return
        if self.cycle + count >= _NEVER:
            raise ConfigurationError(
                f"a batch run is limited to {_NEVER} total bus cycles "
                "(int32 cycle state); split the run or use kernel='fast'"
            )
        # The backend owns the execution strategy: numpy (and cupy) run
        # the vectorized loops below; numba drives its compiled scalar
        # loop over the same state arrays.
        self._backend.advance(self, count)

    def _make_arbiter(self):
        """Build the per-cycle arbitration closure both loops share.

        The closure takes the cycle's candidate state - ``eligible``
        requests ``(n, fleet)``, ``ready`` responses ``(m, fleet)``, and
        the FCFS inputs (``issue`` stamps, oldest-ready cycles) - and
        returns the grant routing plus the (lazily computed) winners.
        One definition keeps the priority/tie-break semantics of the
        buffered and unbuffered loops from ever diverging; the closure
        call adds a fixed sub-microsecond cost per cycle.
        """
        np = self._np
        float32 = np.float32
        matmul = np.matmul
        copyto = np.copyto
        floor = np.floor
        tril_n = self._tril_n
        tril_m = self._tril_m
        cand_n = self._cand_n
        cand_m = self._cand_m
        rank_n = self._rank_n
        rank_m = self._rank_m
        proc_first = self._proc_first
        random_tie = self._random_tie
        arb_take_all = (
            self._arb_lanes.take_all if self._arb_lanes is not None else None
        )

        def arbitrate(eligible, ready, issue, head_ready):
            request_winner = response_winner = None
            if random_tie:
                # One draw per row per cycle, used by whichever grant
                # decision (if any) the row makes - a row decides at
                # most one grant per cycle.  The ranks double as the
                # candidate-count reduction (their last row).
                u_arb = arb_take_all()
                copyto(cand_n, eligible)
                copyto(cand_m, ready)
                matmul(tril_n, cand_n, out=rank_n)
                matmul(tril_m, cand_m, out=rank_m)
                have_request = rank_n[-1] > 0
                have_response = rank_m[-1] > 0
            else:
                have_request = eligible.any(axis=0)
                have_response = ready.any(axis=0)
            if proc_first:
                do_request = have_request
                do_response = have_response & ~have_request
            else:
                do_response = have_response
                do_request = have_request & ~have_response
            any_request = bool(do_request.any())
            any_response = bool(do_response.any())
            if random_tie:
                # floor(u * count) picks the same k-th candidate as the
                # old integer-cumsum path (counts are exact in float32);
                # "#ranks <= pick" equals "first rank > pick" because
                # ranks are nondecreasing down the lane axis.
                if any_request:
                    pick = floor(u_arb * rank_n[-1]).astype(float32)
                    request_winner = (rank_n <= pick[None, :]).sum(axis=0)
                if any_response:
                    pick = floor(u_arb * rank_m[-1]).astype(float32)
                    response_winner = (rank_m <= pick[None, :]).sum(axis=0)
            else:
                if any_request:
                    request_winner = np.where(eligible, issue, _NEVER).argmin(
                        axis=0
                    )
                if any_response:
                    response_winner = np.where(
                        ready, head_ready, _NEVER
                    ).argmin(axis=0)
            return (
                do_request,
                do_response,
                any_request,
                any_response,
                request_winner,
                response_winner,
            )

        return arbitrate

    def _complete_responses(
        self, grant_rows, procs, flat_lane, cycle, wait=None, service=None
    ):
        """Shared response-grant tail: counters, next target, wake.

        ``wait`` carries the per-grant arbitration-plus-queueing delays
        (latency collection only) and ``service`` the drawn service
        durations (geometric latency collection only); the total
        latency is derived from the frozen issue stamps here either
        way.
        """
        np = self._np
        self.completions[grant_rows] += 1
        total = (cycle + 1) - self._issue_flat[flat_lane]
        self.total_latency[grant_rows] += total
        if self._sketch_total is not None:
            # Post-warmup only: run() creates the sketches at the
            # measurement boundary.  Grant rows are distinct (one
            # response per row per cycle), as the sketch requires.
            self._sketch_total.add(grant_rows, total)
            self._sketch_wait.add(grant_rows, wait)
            if self._sketch_service is not None:
                self._sketch_service.add(grant_rows, service)
        drawn = self._draw_target_rows(grant_rows, procs)
        self._target_flat[flat_lane] = drawn
        self._target_gidx_flat[flat_lane] = (
            drawn.astype(np.int64) * self._fleet + grant_rows
        )
        if self._all_p1:
            # Wakes are exactly next cycle; the caller keeps the lanes.
            return
        # Inverse-CDF geometric think time: one uniform per completion
        # decides how many processor cycles the issue coin keeps
        # failing.  Wakes past the cycle cap clamp to the (unreachable)
        # never sentinel.
        u_think = self._think_lanes.take_rows(grant_rows)
        failures = (
            np.log1p(-u_think) / self._log1p_neg_p_flat[flat_lane]
        ).astype(np.int64)
        self._wake_flat[flat_lane] = np.minimum(
            cycle + 1 + failures * self._pc_rows[grant_rows], _NEVER
        )

    def _advance_unbuffered(self, count: int) -> None:
        """The lean lockstep loop for unbuffered fleets."""
        np = self._np
        nonzero = np.nonzero
        fleet = self._fleet
        r_rows = self._r_rows
        all_p1 = self._all_p1
        track_ready = not self._random_tie
        collect = self._collect_latency
        collect_service = self._collect_service
        geometric = self._geometric
        geom_rows = self._geom_rows
        log_access_rows = self._log_access_rows
        access_take_rows = (
            self._access_lanes.take_rows if geometric else None
        )
        out_wait_flat = self._out_wait_flat if collect else None
        out_dur_flat = self._out_dur_flat if collect_service else None
        arbitrate = self._make_arbiter()

        requesting = self._requesting
        issue = self._issue
        wake = self._wake
        svc_finish = self._svc_finish
        svc_proc = self._svc_proc
        out_full = self._out_full
        out_proc = self._out_proc
        out_ready = self._out_ready
        request_transfers = self.request_transfers
        busy_accum = self._busy_accum
        requesting_flat = self._requesting_flat
        target_gidx = self._target_gidx
        target_gidx_flat = self._target_gidx_flat
        issue_flat = self._issue_flat
        svc_finish_flat = self._svc_finish_flat
        svc_proc_flat = self._svc_proc_flat
        module_free_flat = self._module_free_flat
        out_full_flat = self._out_full_flat
        out_proc_flat = self._out_proc_flat

        pending = self._pending_flat
        cycle = self.cycle
        for _ in range(count):
            # 1. processor-cycle boundaries: waking processors issue
            #    (their targets were drawn when the wake was scheduled).
            if all_p1:
                if pending is not None:
                    issue_flat[pending] = cycle
                    requesting_flat[pending] = True
                    pending = None
            else:
                waking = wake == cycle
                if waking.any():
                    issue[waking] = cycle
                    requesting |= waking
                    wake[waking] = _NEVER

            # 2. arbitration on the pre-tick state.
            eligible = requesting & module_free_flat[target_gidx]
            (
                do_request,
                do_response,
                any_request,
                any_response,
                request_winner,
                response_winner,
            ) = arbitrate(eligible, out_full, issue, out_ready)

            # 3. module completions this cycle (a finish stamp matches
            #    exactly once, so stale stamps can never re-fire).
            finishing = svc_finish == cycle
            if finishing.any():
                # Unbuffered service starts on a fully idle module, so
                # the output slot is always free here; dense masked
                # writes beat index-list scatters.
                out_full |= finishing
                np.copyto(out_proc, svc_proc, where=finishing)
                if track_ready:
                    out_ready[finishing] = cycle + 1

            # 4. the granted transfer completes at the end of the cycle.
            if any_request:
                grant_rows = nonzero(do_request)[0]
                lanes = request_winner[grant_rows]
                flat_lane = lanes * fleet + grant_rows
                flat_mod = target_gidx_flat[flat_lane]
                requesting_flat[flat_lane] = False
                request_transfers[grant_rows] += 1
                module_free_flat[flat_mod] = False
                svc_proc_flat[flat_mod] = lanes
                if geometric:
                    # Inverse-CDF geometric service: one uniform per
                    # grant from the per-row access-times stream.
                    # Constant-r rows of a packed fleet draw nothing.
                    duration = r_rows[grant_rows].copy()
                    geo = geom_rows[grant_rows]
                    if geo.any():
                        geo_rows = grant_rows[geo]
                        u_access = access_take_rows(geo_rows)
                        duration[geo] = (
                            np.log1p(-u_access) / log_access_rows[geo_rows]
                        ).astype(np.int64) + 1
                else:
                    duration = r_rows[grant_rows]
                svc_finish_flat[flat_mod] = cycle + duration
                if collect:
                    # Service starts next cycle: wait = start - issue - 1.
                    out_wait_flat[flat_mod] = cycle - issue_flat[flat_lane]
                    if collect_service:
                        out_dur_flat[flat_mod] = duration
                # Charge the service up front; _memory_busy subtracts
                # the unworked tail of in-flight services.
                busy_accum[grant_rows] += duration
            if any_response:
                grant_rows = nonzero(do_response)[0]
                flat_mod = response_winner[grant_rows] * fleet + grant_rows
                procs = out_proc_flat[flat_mod]
                out_full_flat[flat_mod] = False
                module_free_flat[flat_mod] = True
                wait = out_wait_flat[flat_mod] if collect else None
                service = (
                    out_dur_flat[flat_mod] if collect_service else None
                )
                flat_lane = procs * fleet + grant_rows
                self._complete_responses(
                    grant_rows, procs, flat_lane, cycle, wait, service
                )
                if all_p1:
                    pending = flat_lane
            cycle += 1
        self.cycle = cycle
        self._pending_flat = pending

    def _advance_buffered(self, count: int) -> None:
        """The lockstep loop for buffered fleets (stalls, FIFO queues).

        Queues live in ``(slots, m * fleet)`` circular buffers: pushes
        and pops are flat fancy-indexed scatters over the modules with
        an event this cycle, so the per-cycle cost is a fixed number of
        dense ``(m, fleet)`` mask operations plus sparse index-list
        work - no per-cycle FIFO shifting, no dense stall scans (stall
        resolutions travel as a flat index list for the next cycle).
        """
        np = self._np
        where = np.where
        nonzero = np.nonzero
        fleet = self._fleet
        flat_modules = self._m * fleet
        r_rows = self._r_rows
        depth_rows = self._depth_rows
        depth_cols = depth_rows[None, :]
        capacity_rows = self._capacity_rows
        all_p1 = self._all_p1
        track_ready = not self._random_tie
        collect = self._collect_latency
        collect_service = self._collect_service
        geometric = self._geometric
        geom_rows = self._geom_rows
        log_access_rows = self._log_access_rows
        if geometric:
            access_take_rows = self._access_lanes.take_rows
            access_take_multi = self._access_lanes.take_rows_multi
        arbitrate = self._make_arbiter()

        requesting = self._requesting
        issue = self._issue
        wake = self._wake
        svc_active = self._svc_active
        request_transfers = self.request_transfers
        busy_accum = self._busy_accum
        requesting_flat = self._requesting_flat
        target_gidx = self._target_gidx
        target_gidx_flat = self._target_gidx_flat
        issue_flat = self._issue_flat
        svc_active_flat = self._svc_active_flat
        svc_finish_flat = self._svc_finish_flat
        svc_proc_flat = self._svc_proc_flat
        stalled = self._stalled
        stalled_flat = self._stalled_flat
        stalled_proc_flat = self._stalled_proc_flat
        inq_len = self._inq_len
        inq_len_flat = self._inq_len_flat
        inq_ring_flat = self._inq_ring.reshape(-1)
        inq_head = self._inq_head
        outq_len = self._outq_len
        outq_len_flat = self._outq_len_flat
        outq_ring_flat = self._outq_ring.reshape(-1)
        outq_head = self._outq_head
        head_ready = self._head_ready
        if track_ready:
            outq_ready_flat = self._outq_ready_ring.reshape(-1)
            head_ready_flat = head_ready.reshape(-1)
        if collect:
            svc_wait_flat = self._svc_wait_flat
            stalled_wait_flat = self._stalled_wait_flat
            outq_wait_flat = self._outq_wait_ring.reshape(-1)
        if collect_service:
            svc_dur_flat = self._svc_dur_flat
            stalled_dur_flat = self._stalled_dur_flat
            outq_dur_flat = self._outq_dur_ring.reshape(-1)

        def pull_input(flat):
            """Start serving the input-queue head of each flat module."""
            head = inq_head[flat]
            lanes = inq_ring_flat[head * flat_modules + flat]
            svc_active_flat[flat] = True
            svc_proc_flat[flat] = lanes
            rows = flat % fleet
            if geometric:
                # A row may pull several modules this cycle; the multi
                # take consumes its draws in ascending-module order.
                # Constant-r rows of a packed fleet draw nothing.
                duration = r_rows[rows].copy()
                geo = geom_rows[rows]
                if geo.any():
                    u_access = access_take_multi(rows[geo])
                    duration[geo] = (
                        np.log1p(-u_access) / log_access_rows[rows[geo]]
                    ).astype(np.int64) + 1
            else:
                duration = r_rows[rows]
            svc_finish_flat[flat] = cycle + duration
            if collect:
                svc_wait_flat[flat] = cycle - issue_flat[
                    lanes * fleet + rows
                ]
                if collect_service:
                    svc_dur_flat[flat] = duration
            head += 1
            d = depth_rows[rows]
            inq_head[flat] = where(head >= d, head - d, head)
            inq_len_flat[flat] -= 1

        def push_output(flat, length, procs, waits, durs):
            """Append responses to the output rings of ``flat``."""
            cap = capacity_rows[flat % fleet]
            slot = outq_head[flat] + length
            slot = where(slot >= cap, slot - cap, slot)
            ring_index = slot * flat_modules + flat
            outq_ring_flat[ring_index] = procs
            if track_ready:
                outq_ready_flat[ring_index] = cycle + 1
                newly_headed = flat[length == 0]
                if newly_headed.size:
                    head_ready_flat[newly_headed] = cycle + 1
            if collect:
                outq_wait_flat[ring_index] = waits
                if collect_service:
                    outq_dur_flat[ring_index] = durs
            outq_len_flat[flat] = length + 1

        pending = self._pending_flat
        resolve = self._resolve_flat
        cycle = self.cycle
        for _ in range(count):
            # 1. processor-cycle boundaries: waking processors issue.
            if all_p1:
                if pending is not None:
                    issue_flat[pending] = cycle
                    requesting_flat[pending] = True
                    pending = None
            else:
                waking = wake == cycle
                if waking.any():
                    issue[waking] = cycle
                    requesting |= waking
                    wake[waking] = _NEVER

            # Busy accounting: one count per module serving this cycle
            # (services start after, and clear later than, this point).
            busy_accum += svc_active.sum(axis=0)

            # 2. arbitration on the pre-tick state.
            busy = (svc_active | stalled) & (inq_len >= depth_cols)
            ready = outq_len > 0
            eligible = requesting & ~busy.reshape(-1)[target_gidx]
            (
                do_request,
                do_response,
                any_request,
                any_response,
                request_winner,
                response_winner,
            ) = arbitrate(eligible, ready, issue, head_ready)

            # 3. module events for this cycle: stall resolutions (the
            #    flat list scheduled by last cycle's response grants),
            #    then service completions.
            resolving = resolve
            resolve = None
            if resolving is not None:
                # The response grant that scheduled the resolve freed a
                # slot, and a stalled module finishes nothing - the push
                # below can never overflow.
                push_output(
                    resolving,
                    outq_len_flat[resolving],
                    stalled_proc_flat[resolving],
                    stalled_wait_flat[resolving] if collect else None,
                    stalled_dur_flat[resolving] if collect_service else None,
                )
                stalled_flat[resolving] = False
                pulled = resolving[inq_len_flat[resolving] > 0]
                if pulled.size:
                    pull_input(pulled)
            flat = nonzero(svc_finish_flat == cycle)[0]
            if flat.size:
                svc_active_flat[flat] = False
                length = outq_len_flat[flat]
                space = length < capacity_rows[flat % fleet]
                free = flat[space]
                if free.size:
                    push_output(
                        free,
                        length[space],
                        svc_proc_flat[free],
                        svc_wait_flat[free] if collect else None,
                        svc_dur_flat[free] if collect_service else None,
                    )
                    pulled = free[inq_len_flat[free] > 0]
                    if pulled.size:
                        pull_input(pulled)
                full = flat[~space]
                if full.size:
                    stalled_flat[full] = True
                    stalled_proc_flat[full] = svc_proc_flat[full]
                    if collect:
                        stalled_wait_flat[full] = svc_wait_flat[full]
                        if collect_service:
                            stalled_dur_flat[full] = svc_dur_flat[full]

            # 4. the granted transfer completes at the end of the cycle.
            if any_request:
                grant_rows = nonzero(do_request)[0]
                lanes = request_winner[grant_rows]
                flat_lane = lanes * fleet + grant_rows
                flat_mod = target_gidx_flat[flat_lane]
                requesting_flat[flat_lane] = False
                request_transfers[grant_rows] += 1
                # Post-event module state decides direct service vs
                # input buffering, exactly like the exact kernels.
                idle = ~(svc_active_flat[flat_mod] | stalled_flat[flat_mod])
                idle_flat = flat_mod[idle]
                if idle_flat.size:
                    svc_active_flat[idle_flat] = True
                    svc_proc_flat[idle_flat] = lanes[idle]
                    idle_rows = grant_rows[idle]
                    if geometric:
                        duration = r_rows[idle_rows].copy()
                        geo = geom_rows[idle_rows]
                        if geo.any():
                            geo_rows = idle_rows[geo]
                            u_access = access_take_rows(geo_rows)
                            duration[geo] = (
                                np.log1p(-u_access)
                                / log_access_rows[geo_rows]
                            ).astype(np.int64) + 1
                    else:
                        duration = r_rows[idle_rows]
                    svc_finish_flat[idle_flat] = cycle + duration
                    if collect:
                        svc_wait_flat[idle_flat] = cycle - issue_flat[
                            flat_lane[idle]
                        ]
                        if collect_service:
                            svc_dur_flat[idle_flat] = duration
                queued = ~idle
                queue_mod = flat_mod[queued]
                if queue_mod.size:
                    d = depth_rows[grant_rows[queued]]
                    slot = inq_head[queue_mod] + inq_len_flat[queue_mod]
                    slot = where(slot >= d, slot - d, slot)
                    inq_ring_flat[slot * flat_modules + queue_mod] = lanes[
                        queued
                    ]
                    inq_len_flat[queue_mod] += 1
            if any_response:
                grant_rows = nonzero(do_response)[0]
                flat_mod = response_winner[grant_rows] * fleet + grant_rows
                head = outq_head[flat_mod]
                ring_index = head * flat_modules + flat_mod
                procs = outq_ring_flat[ring_index]
                new_length = outq_len_flat[flat_mod] - 1
                outq_len_flat[flat_mod] = new_length
                head += 1
                cap = capacity_rows[grant_rows]
                head = where(head >= cap, head - cap, head)
                outq_head[flat_mod] = head
                if track_ready:
                    head_ready_flat[flat_mod] = where(
                        new_length > 0,
                        outq_ready_flat[head * flat_modules + flat_mod],
                        _NEVER,
                    )
                wait = outq_wait_flat[ring_index] if collect else None
                service = (
                    outq_dur_flat[ring_index] if collect_service else None
                )
                flat_lane = procs * fleet + grant_rows
                self._complete_responses(
                    grant_rows, procs, flat_lane, cycle, wait, service
                )
                if all_p1:
                    pending = flat_lane
                resolving_next = flat_mod[stalled_flat[flat_mod]]
                if resolving_next.size:
                    # Stalled modules resolve exactly one cycle after
                    # the response grant that freed their slot.
                    resolve = resolving_next
            cycle += 1
        self.cycle = cycle
        self._pending_flat = pending
        self._resolve_flat = resolve

    def run(
        self,
        cycles: int,
        warmup: int | None = None,
        batches: int = _DEFAULT_BATCHES,
    ) -> list[SimulationResult]:
        """Simulate ``cycles`` measured bus cycles for every row.

        Parameter semantics and defaults replicate
        :meth:`repro.bus.system.MultiplexedBusSystem.run`; the return
        value is one result per fleet row, in row order.
        """
        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        if warmup is None:
            warmup = int(cycles * _DEFAULT_WARMUP_FRACTION)
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        if batches < 0:
            raise ConfigurationError(f"batches must be >= 0, got {batches}")
        self.advance(warmup)
        if self._collect_latency:
            # Fresh sketches at the measurement boundary: in-flight
            # requests keep their (pre-boundary) wait stamps, exactly
            # like the exact kernels' trackers, but only post-warmup
            # completions are recorded.
            from repro.metrics import FleetQuantileSketch

            self._sketch_wait = FleetQuantileSketch(self._fleet)
            self._sketch_total = FleetQuantileSketch(self._fleet)
            if self._collect_service:
                self._sketch_service = FleetQuantileSketch(self._fleet)
        start_cycle = self.cycle
        start_completions = self.completions.copy()
        start_requests = self.request_transfers.copy()
        start_latency = self.total_latency.copy()
        start_memory_busy = self._memory_busy()

        pc_rows = self._pc_rows
        batch_ebws: list[list[float]] = [[] for _ in range(self._fleet)]
        if batches > 1:
            batch_length = cycles // batches
            remainder = cycles - batch_length * batches
            previous = self.completions.copy()
            for index in range(batches):
                length = batch_length + (1 if index < remainder else 0)
                self.advance(length)
                if length > 0:
                    for f in range(self._fleet):
                        batch_ebws[f].append(
                            int(self.completions[f] - previous[f])
                            * int(pc_rows[f])
                            / length
                        )
                previous = self.completions.copy()
        else:
            self.advance(cycles)

        measured = self.cycle - start_cycle
        memory_busy = self._memory_busy() - start_memory_busy
        reports = (
            self._latency_reports() if self._collect_latency else None
        )
        return [
            SimulationResult(
                config=self.configs[f],
                cycles=measured,
                completions=int(self.completions[f] - start_completions[f]),
                request_transfers=int(
                    self.request_transfers[f] - start_requests[f]
                ),
                response_transfers=int(
                    self.completions[f] - start_completions[f]
                ),
                memory_busy_cycles=int(memory_busy[f]),
                total_latency=int(self.total_latency[f] - start_latency[f]),
                seed=self.seeds[f],
                warmup_cycles=warmup,
                batch_ebws=tuple(batch_ebws[f]),
                latency=None if reports is None else reports[f],
            )
            for f in range(self._fleet)
        ]

    def _latency_reports(self):
        """One :class:`LatencyReport` per row from the fleet sketches.

        Wait and total populations come from the vectorized sketches.
        A constant-``r`` row's service population is synthesised
        exactly (the degenerate distribution at its own ``r``); a
        geometric row's per-access service draws flow through a third
        sketch, so its summary carries the same sketch error bound as
        the wait and total populations.
        """
        from fractions import Fraction

        from repro.metrics import LatencyReport, LatencySummary

        assert self._sketch_wait is not None
        wait_rows = self._sketch_wait.summaries()
        total_rows = self._sketch_total.summaries()
        service_rows = (
            self._sketch_service.summaries()
            if self._sketch_service is not None
            else None
        )
        reports = []
        for f, (wait, total) in enumerate(zip(wait_rows, total_rows)):
            if service_rows is not None and self._geom_rows[f]:
                service = service_rows[f]
            elif total.count:
                value = Fraction(int(self._r_rows[f]))
                service = LatencySummary(
                    count=total.count,
                    total=value * total.count,
                    minimum=value,
                    maximum=value,
                    p50=value,
                    p90=value,
                    p99=value,
                )
            else:
                service = LatencySummary()
            reports.append(
                LatencyReport(wait=wait, service=service, total=total)
            )
        return reports


def run_batch(
    config: SystemConfig,
    cycles: int = 100_000,
    seed: int = 0,
    warmup: int | None = None,
    targets: TargetSampler | None = None,
    request_probabilities: Sequence[float] | None = None,
    collect_latency: bool = False,
    geometric_access_times: bool = False,
    backend: str | BatchBackend = DEFAULT_BACKEND,
) -> SimulationResult:
    """Run one configuration through a single-row batch fleet.

    The ``kernel="batch"`` entry point of :func:`repro.bus.simulate`.
    A one-row fleet produces exactly the bytes the same row produces
    inside any larger fleet (rows are independent; property-tested), so
    cached batch results never depend on how runs were grouped.

    ``collect_latency`` attaches the sketch-based
    :class:`~repro.metrics.LatencyReport` (statistically - not bit -
    equivalent to the exact kernels' streaming summaries).
    ``backend`` selects the array substrate; see
    :class:`BatchBusKernel`.
    """
    kernel = BatchBusKernel(
        [config],
        [seed],
        targets=[targets],
        request_probabilities=[request_probabilities],
        collect_latency=collect_latency,
        geometric_access_times=geometric_access_times,
        backend=backend,
    )
    return kernel.run(cycles, warmup=warmup)[0]
