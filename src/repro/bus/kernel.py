"""The fast simulation kernel: a flattened, bit-identical cycle loop.

:class:`MultiplexedBusSystem` is written for clarity: processors,
modules and the arbiter are objects, every cycle rebuilds candidate
lists of NamedTuples, and every module is ticked even when idle.  That
is the right shape for the state-machine property tests - and the wrong
shape for million-cycle sweeps, where the per-cycle object churn and
method dispatch dominate wall-clock time.

:class:`FastBusKernel` runs the *same machine* on preallocated arrays:

* processor state lives in flat lists (``target``, ``issue``, a sorted
  ``requesting`` index list) instead of objects;
* thinking processors sit in a wake calendar (``{cycle: [processor]}``)
  instead of being polled every cycle;
* memory service is event-scheduled: a service started at the end of
  cycle ``T`` finishes during cycle ``T + r``, so idle modules are never
  touched and busy modules are touched once, at completion;
* buffered-mode stalls resolve through a one-shot calendar entry armed
  by the response transfer that frees the output slot - the only event
  that can unblock a stalled module;
* random draws go straight to the underlying :class:`random.Random`
  objects of the same named streams the reference machine uses.

**Bit-identical contract.**  For every supported configuration the
kernel performs *exactly the same random draws in exactly the same
order* and produces *exactly the same counters* as
``MultiplexedBusSystem.run`` - completions, transfer counts, memory busy
cycles, total latency, batch EBWs and streaming latency summaries are
equal as Python values, and the final RNG states match.  The contract is
enforced by the hypothesis fleet in
``tests/properties/test_kernel_equivalence.py``; because of it, the
kernel choice is an execution lever (like ``--jobs``) and never enters a
cache key.

**Coverage.**  The kernel supports the library's own target samplers
(uniform, hot-spot, trace - hence every declarative workload, including
heterogeneous ``p``), both priorities, both tie-breaks, buffered and
unbuffered modules at any depth, and geometric access times (the
Section 6 product-form comparison lever).  It does not support custom
:class:`~repro.workloads.generators.TargetSampler` objects or
cycle-level trace sinks - those stay on the reference machine, which
remains the semantic ground truth.

Geometric access times draw one service duration per access from the
same ``"access-times"`` stream the reference machine uses.  Because the
reference machine draws at service start while sweeping modules in
index order, the kernel processes each cycle's stall-resolution and
completion events merged in module-index order whenever the durations
are random - with constant durations no event draws anything and the
cheaper split processing is kept.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Sequence

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority, TieBreak
from repro.core.results import SimulationResult
from repro.des.rng import RandomStream, derive_seed

# The measurement-protocol defaults are the reference machine's own -
# imported, not copied, so the two kernels can never drift apart.
from repro.bus.system import _DEFAULT_BATCHES, _DEFAULT_WARMUP_FRACTION
from repro.workloads.generators import (
    HotSpotTargets,
    TargetSampler,
    TraceTargets,
    UniformTargets,
)

_UNIFORM, _HOT_SPOT, _TRACE = 0, 1, 2


def _stream_random(stream: RandomStream):
    """The underlying :class:`random.Random` of a named stream."""
    return stream._random


class FastBusKernel:
    """Flattened, preallocated-array implementation of the bus machine.

    Construction mirrors :class:`~repro.bus.system.MultiplexedBusSystem`
    (same parameters, same initial draws); :meth:`run` mirrors its
    measurement protocol.  See the module docstring for the equivalence
    contract and the supported configuration space.
    """

    def __init__(
        self,
        config: SystemConfig,
        seed: int = 0,
        targets: TargetSampler | None = None,
        request_probabilities: Sequence[float] | None = None,
        collect_latency: bool = False,
        geometric_access_times: bool = False,
    ) -> None:
        from repro.bus.system import _resolve_request_probabilities

        self.config = config
        self.seed = seed
        self._collect_latency = collect_latency
        self.latency = None
        self._geometric = geometric_access_times

        n = config.processors
        m = config.memories
        self._p = _resolve_request_probabilities(config, request_probabilities)

        # --- random streams (same derivation as the reference machine).
        # The uniform default draws from the "targets" stream the system
        # would create; workload-built samplers bring their own stream
        # (e.g. "hot-spot"), which the kernel consumes *in place* so the
        # object's post-run state matches the reference run's.
        import random as _random_module

        self._trace_positions: list[int] | None = None
        self._traces: list[list[int]] | None = None
        if targets is None:
            self._mode = _UNIFORM
            self._targets_rnd = _random_module.Random(
                derive_seed(seed, "targets")
            )
            self._hot_fraction = 0.0
            self._hot_module = 0
        elif isinstance(targets, UniformTargets):
            self._mode = _UNIFORM
            self._targets_rnd = _stream_random(targets._stream)
            self._hot_fraction = 0.0
            self._hot_module = 0
            m = targets._modules
        elif isinstance(targets, HotSpotTargets):
            self._mode = _HOT_SPOT
            self._targets_rnd = _stream_random(targets._stream)
            self._hot_fraction = targets._hot_fraction
            self._hot_module = targets._hot_module
            m = targets._modules
        elif isinstance(targets, TraceTargets):
            self._mode = _TRACE
            self._targets_rnd = None
            self._traces = targets._traces
            self._trace_positions = targets._positions
            self._hot_fraction = 0.0
            self._hot_module = 0
        else:
            raise ConfigurationError(
                "the fast kernel supports the library's uniform, hot-spot "
                f"and trace target samplers; got {type(targets).__name__} - "
                "use kernel='reference' for custom samplers"
            )
        self._target_modules = m
        self._think_rnd = _random_module.Random(derive_seed(seed, "think"))
        self._arb_rnd = _random_module.Random(derive_seed(seed, "arbitration"))
        # Geometric access times: the reference machine's StreamFactory
        # creates the "access-times" stream at construction; seeding is
        # per-name (derive_seed), so creation order is irrelevant.
        self._access_rnd = (
            _random_module.Random(derive_seed(seed, "access-times"))
            if geometric_access_times
            else None
        )
        self._access_p = 1.0 / config.memory_cycle_ratio

        # --- processor state.
        self._target = [0] * n
        self._issue = [0] * n
        self._requesting: list[int] = list(range(n))
        self._wake: dict[int, list[int]] = {}

        # --- module state.
        depth = config.buffer_depth if config.buffered else 0
        self._depth = depth
        self._capacity = depth if depth > 0 else 1
        self._svc_active = [False] * config.memories
        self._svc_finish = [0] * config.memories
        self._svc_start = [0] * config.memories
        self._svc_proc = [0] * config.memories
        self._svc_issue = [0] * config.memories
        self._stalled: list[tuple[int, int, int, int] | None] = (
            [None] * config.memories
        )
        self._inq: list[deque] = [deque() for _ in range(config.memories)]
        self._outq: list[deque] = [deque() for _ in range(config.memories)]
        self._ready_modules: list[int] = []
        self._busy_accum = [0] * config.memories
        self._finish: dict[int, list[int]] = {}
        self._resolve: dict[int, list[int]] = {}

        # --- counters.
        self.cycle = 0
        self.completions = 0
        self.request_transfers = 0
        self.response_transfers = 0
        self.total_latency = 0

        # Initial condition: every processor issues at cycle 0, drawing
        # its target in processor-index order (matches Processor.start).
        for i in range(n):
            self._target[i] = self._draw_target(i)

    # ------------------------------------------------------------------
    def _draw_target(self, processor: int) -> int:
        """One target draw, identical to the sampler the mode mirrors."""
        mode = self._mode
        if mode == _UNIFORM:
            return self._targets_rnd.randrange(self._target_modules)
        if mode == _HOT_SPOT:
            hot_fraction = self._hot_fraction
            rnd = self._targets_rnd
            # RandomStream.bernoulli: probability 1.0 short-circuits
            # without a draw; anything below draws exactly once.
            if hot_fraction == 1.0 or rnd.random() < hot_fraction:
                return self._hot_module
            return rnd.randrange(self._target_modules)
        assert self._traces is not None and self._trace_positions is not None
        trace = self._traces[processor]
        position = self._trace_positions[processor]
        self._trace_positions[processor] = (position + 1) % len(trace)
        return trace[position]

    def rng_states(self) -> dict[str, object]:
        """Final state of each consumed stream (equivalence tests)."""
        states: dict[str, object] = {
            "think": self._think_rnd.getstate(),
            "arbitration": self._arb_rnd.getstate(),
        }
        if self._targets_rnd is not None:
            states["targets"] = self._targets_rnd.getstate()
        if self._access_rnd is not None:
            states["access-times"] = self._access_rnd.getstate()
        if self._trace_positions is not None:
            states["trace_positions"] = tuple(self._trace_positions)
        return states

    # ------------------------------------------------------------------
    def _memory_busy(self) -> int:
        """Total module busy cycles through the last simulated cycle.

        Matches ``sum(module.busy_cycles)`` of the reference machine:
        completed services contribute their full length (accumulated at
        completion), in-flight services contribute the cycles already
        ticked.
        """
        through = self.cycle - 1
        total = sum(self._busy_accum)
        svc_active = self._svc_active
        svc_start = self._svc_start
        for k in range(self.config.memories):
            if svc_active[k] and svc_start[k] <= through:
                # An active service always finishes after `through`
                # (finish events for earlier cycles were processed).
                total += through - svc_start[k] + 1
        return total

    def advance(self, count: int) -> None:
        """Run ``count`` bus cycles of the flattened loop.

        The kernel counterpart of calling
        :meth:`~repro.bus.system.MultiplexedBusSystem.step` ``count``
        times (without the per-step grant return); used by :meth:`run`
        and the kernel microbenchmarks."""
        if count <= 0:
            return
        # Local aliases: the loop body runs hundreds of thousands of
        # times, and global/attribute lookups dominate otherwise.
        config = self.config
        r = config.memory_cycle_ratio
        pc = config.processor_cycle
        depth = self._depth
        buffered = depth > 0
        capacity = self._capacity
        proc_first = config.priority is Priority.PROCESSORS
        random_tie = config.tie_break is TieBreak.RANDOM
        p_values = self._p
        uniform_p = all(p == p_values[0] for p in p_values)
        p_common = p_values[0] if uniform_p else -1.0
        mode = self._mode
        modules = self._target_modules
        targets_rnd = self._targets_rnd
        targets_random = targets_rnd.random if targets_rnd is not None else None
        targets_randrange = (
            targets_rnd.randrange if targets_rnd is not None else None
        )
        hot_fraction = self._hot_fraction
        hot_module = self._hot_module
        traces = self._traces
        trace_positions = self._trace_positions
        think_random = self._think_rnd.random
        arb_randrange = self._arb_rnd.randrange
        geometric = self._geometric
        access_p = self._access_p
        if geometric:
            access_random = self._access_rnd.random

            def draw_duration() -> int:
                """One access duration: ``1 + geometric_failures(1/r)``.

                Mirrors the reference sampler exactly, including the
                ``p == 1`` (r == 1) short-circuit that draws nothing.
                """
                if access_p == 1.0:
                    return 1
                duration = 1
                while not access_random() < access_p:
                    duration += 1
                return duration
        else:
            draw_duration = None
        target = self._target
        issue = self._issue
        requesting = self._requesting
        wake = self._wake
        svc_active = self._svc_active
        svc_finish = self._svc_finish
        svc_start = self._svc_start
        svc_proc = self._svc_proc
        svc_issue = self._svc_issue
        stalled = self._stalled
        inq = self._inq
        outq = self._outq
        ready_modules = self._ready_modules
        busy_accum = self._busy_accum
        finish = self._finish
        resolve = self._resolve
        tracker = self.latency
        record = tracker.record if tracker is not None else None

        cycle = self.cycle
        completions = self.completions
        request_transfers = self.request_transfers
        response_transfers = self.response_transfers
        total_latency = self.total_latency

        for _ in range(count):
            # 1. processor-cycle boundaries: waking processors issue,
            #    in processor-index order (Processor.on_cycle_start).
            bucket = wake.pop(cycle, None)
            if bucket is not None:
                if len(bucket) > 1:
                    bucket.sort()
                for i in bucket:
                    if mode == _UNIFORM:
                        target[i] = targets_randrange(modules)
                    elif mode == _HOT_SPOT:
                        if (
                            hot_fraction == 1.0
                            or targets_random() < hot_fraction
                        ):
                            target[i] = hot_module
                        else:
                            target[i] = targets_randrange(modules)
                    else:
                        trace = traces[i]
                        position = trace_positions[i]
                        trace_positions[i] = (position + 1) % len(trace)
                        target[i] = trace[position]
                    issue[i] = cycle
                    insort(requesting, i)

            # 2. arbitration on the pre-tick state (BusArbiter.arbitrate).
            grant_request = -1
            grant_response = -1
            want_request = True
            if not proc_first and ready_modules:
                want_request = False
            if want_request and requesting:
                eligible: list[int] = []
                append = eligible.append
                if buffered:
                    for i in requesting:
                        k = target[i]
                        if (
                            not svc_active[k] and stalled[k] is None
                        ) or len(inq[k]) < depth:
                            append(i)
                else:
                    for i in requesting:
                        k = target[i]
                        if not svc_active[k] and not outq[k]:
                            append(i)
                if eligible:
                    if len(eligible) == 1:
                        grant_request = eligible[0]
                    elif random_tie:
                        grant_request = eligible[arb_randrange(len(eligible))]
                    else:
                        best = eligible[0]
                        best_issue = issue[best]
                        for i in eligible[1:]:
                            if issue[i] < best_issue:
                                best, best_issue = i, issue[i]
                        grant_request = best
            if grant_request < 0 and ready_modules:
                if len(ready_modules) == 1:
                    grant_response = ready_modules[0]
                elif random_tie:
                    grant_response = ready_modules[
                        arb_randrange(len(ready_modules))
                    ]
                else:
                    best = ready_modules[0]
                    best_ready = outq[best][0][2]
                    for k in ready_modules[1:]:
                        ready_cycle = outq[k][0][2]
                        if ready_cycle < best_ready:
                            best, best_ready = k, ready_cycle
                    grant_response = best

            # 3. module events for this cycle (MemoryModule.tick).
            if not geometric:
                events = resolve.pop(cycle, None)
                if events is not None:
                    for k in events:
                        held = stalled[k]
                        stalled[k] = None
                        if not outq[k]:
                            insort(ready_modules, k)
                        outq[k].append(
                            (held[0], held[1], cycle + 1, held[2], held[3])
                        )
                        if inq[k]:
                            proc_i, issue_i = inq[k].popleft()
                            svc_active[k] = True
                            svc_proc[k] = proc_i
                            svc_issue[k] = issue_i
                            svc_start[k] = cycle + 1
                            finish_cycle = cycle + r
                            svc_finish[k] = finish_cycle
                            finish.setdefault(finish_cycle, []).append(k)
                events = finish.pop(cycle, None)
                if events is not None:
                    for k in events:
                        svc_active[k] = False
                        busy_accum[k] += r
                        if len(outq[k]) < capacity:
                            if not outq[k]:
                                insort(ready_modules, k)
                            outq[k].append(
                                (
                                    svc_proc[k],
                                    svc_issue[k],
                                    cycle + 1,
                                    svc_start[k],
                                    cycle,
                                )
                            )
                            if buffered and inq[k]:
                                proc_i, issue_i = inq[k].popleft()
                                svc_active[k] = True
                                svc_proc[k] = proc_i
                                svc_issue[k] = issue_i
                                svc_start[k] = cycle + 1
                                finish_cycle = cycle + r
                                svc_finish[k] = finish_cycle
                                finish.setdefault(finish_cycle, []).append(k)
                        else:
                            stalled[k] = (
                                svc_proc[k],
                                svc_issue[k],
                                svc_start[k],
                                cycle,
                            )
            else:
                # Geometric durations draw at every service start, so
                # events must replay in the reference machine's tick
                # order: modules ascending, whatever the event kind (a
                # module never resolves and finishes in one cycle).
                resolve_bucket = resolve.pop(cycle, None)
                finish_bucket = finish.pop(cycle, None)
                merged: list[tuple[int, bool]] = []
                if resolve_bucket is not None:
                    merged.extend((k, True) for k in resolve_bucket)
                if finish_bucket is not None:
                    merged.extend((k, False) for k in finish_bucket)
                if len(merged) > 1:
                    merged.sort()
                for k, is_resolve in merged:
                    if is_resolve:
                        held = stalled[k]
                        stalled[k] = None
                        if not outq[k]:
                            insort(ready_modules, k)
                        outq[k].append(
                            (held[0], held[1], cycle + 1, held[2], held[3])
                        )
                        start_next = bool(inq[k])
                    else:
                        svc_active[k] = False
                        busy_accum[k] += cycle - svc_start[k] + 1
                        start_next = False
                        if len(outq[k]) < capacity:
                            if not outq[k]:
                                insort(ready_modules, k)
                            outq[k].append(
                                (
                                    svc_proc[k],
                                    svc_issue[k],
                                    cycle + 1,
                                    svc_start[k],
                                    cycle,
                                )
                            )
                            start_next = buffered and bool(inq[k])
                        else:
                            stalled[k] = (
                                svc_proc[k],
                                svc_issue[k],
                                svc_start[k],
                                cycle,
                            )
                    if start_next:
                        proc_i, issue_i = inq[k].popleft()
                        svc_active[k] = True
                        svc_proc[k] = proc_i
                        svc_issue[k] = issue_i
                        svc_start[k] = cycle + 1
                        finish_cycle = cycle + draw_duration()
                        svc_finish[k] = finish_cycle
                        finish.setdefault(finish_cycle, []).append(k)

            # 4. the granted transfer completes at the end of the cycle.
            if grant_request >= 0:
                i = grant_request
                k = target[i]
                requesting.remove(i)
                request_transfers += 1
                if not svc_active[k] and stalled[k] is None:
                    svc_active[k] = True
                    svc_proc[k] = i
                    svc_issue[k] = issue[i]
                    svc_start[k] = cycle + 1
                    if geometric:
                        finish_cycle = cycle + draw_duration()
                    else:
                        finish_cycle = cycle + r
                    svc_finish[k] = finish_cycle
                    finish.setdefault(finish_cycle, []).append(k)
                else:
                    inq[k].append((i, issue[i]))
            elif grant_response >= 0:
                k = grant_response
                proc_i, issue_i, _ready, s0, s1 = outq[k].popleft()
                if not outq[k]:
                    ready_modules.remove(k)
                completions += 1
                response_transfers += 1
                total = cycle - issue_i + 1
                total_latency += total
                if record is not None:
                    # wait: issue to access start, minus the request
                    # transfer cycle itself; service: access-stage span;
                    # total: the paper's issue-to-response latency.
                    record(s0 - issue_i - 1, s1 - s0 + 1, total)
                p = p_common if uniform_p else p_values[proc_i]
                if p < 1.0:
                    # RandomStream.geometric_failures: one uniform draw
                    # per boundary until the issue coin lands.
                    failures = 0
                    while not think_random() < p:
                        failures += 1
                    wake_cycle = cycle + 1 + failures * pc
                else:
                    wake_cycle = cycle + 1
                entry = wake.get(wake_cycle)
                if entry is None:
                    wake[wake_cycle] = [proc_i]
                else:
                    entry.append(proc_i)
                if stalled[k] is not None:
                    resolve.setdefault(cycle + 1, []).append(k)
            cycle += 1

        self.cycle = cycle
        self.completions = completions
        self.request_transfers = request_transfers
        self.response_transfers = response_transfers
        self.total_latency = total_latency

    # ------------------------------------------------------------------
    def run(
        self,
        cycles: int,
        warmup: int | None = None,
        batches: int = _DEFAULT_BATCHES,
    ) -> SimulationResult:
        """Simulate ``cycles`` measured bus cycles and report.

        Parameter semantics, defaults and the measurement protocol
        (warm-up exclusion, batch-means windows, fresh latency
        collectors) replicate
        :meth:`~repro.bus.system.MultiplexedBusSystem.run` exactly.
        """
        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        if warmup is None:
            warmup = int(cycles * _DEFAULT_WARMUP_FRACTION)
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        if batches < 0:
            raise ConfigurationError(f"batches must be >= 0, got {batches}")
        self.advance(warmup)
        if self._collect_latency:
            # Fresh collectors: summaries cover the measurement window
            # only, mirroring the reference machine's warm-up exclusion.
            from repro.metrics import LatencyTracker

            self.latency = LatencyTracker()
        start_cycle = self.cycle
        start_completions = self.completions
        start_requests = self.request_transfers
        start_responses = self.response_transfers
        start_latency = self.total_latency
        start_memory_busy = self._memory_busy()

        batch_ebws: list[float] = []
        if batches > 1:
            batch_length = cycles // batches
            remainder = cycles - batch_length * batches
            previous = self.completions
            for index in range(batches):
                length = batch_length + (1 if index < remainder else 0)
                self.advance(length)
                if length > 0:
                    batch_ebws.append(
                        (self.completions - previous)
                        * self.config.processor_cycle
                        / length
                    )
                previous = self.completions
        else:
            self.advance(cycles)

        return SimulationResult(
            config=self.config,
            cycles=self.cycle - start_cycle,
            completions=self.completions - start_completions,
            request_transfers=self.request_transfers - start_requests,
            response_transfers=self.response_transfers - start_responses,
            memory_busy_cycles=self._memory_busy() - start_memory_busy,
            total_latency=self.total_latency - start_latency,
            seed=self.seed,
            warmup_cycles=warmup,
            batch_ebws=tuple(batch_ebws),
            latency=self.latency.report() if self.latency is not None else None,
        )


def run_fast(
    config: SystemConfig,
    cycles: int = 100_000,
    seed: int = 0,
    warmup: int | None = None,
    targets: TargetSampler | None = None,
    request_probabilities: Sequence[float] | None = None,
    collect_latency: bool = False,
    geometric_access_times: bool = False,
) -> SimulationResult:
    """Build a :class:`FastBusKernel` and run it once.

    The fast-kernel counterpart of :func:`repro.bus.simulate` with
    ``kernel="reference"``; raises :class:`ConfigurationError` for
    configurations outside the kernel's coverage (custom target
    samplers).  ``geometric_access_times`` mirrors the reference
    machine's lever of the same name bit-for-bit (same draws from the
    same ``"access-times"`` stream).
    """
    kernel = FastBusKernel(
        config,
        seed=seed,
        targets=targets,
        request_probabilities=request_probabilities,
        collect_latency=collect_latency,
        geometric_access_times=geometric_access_times,
    )
    return kernel.run(cycles, warmup=warmup)
