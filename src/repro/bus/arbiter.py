"""Bus arbitration (hypotheses (g) and (h) of the paper).

Each bus cycle at most one transfer is granted.  Two candidate classes
exist: processor requests whose target module can accept them, and
memory modules holding a ready response.  The :class:`BusArbiter`
resolves the inter-class conflict with the configured priority (g' /
g'') and intra-class ties either uniformly at random (the paper's
hypothesis (h)) or FCFS (library ablation).
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Sequence

from repro.core.policy import Priority, TieBreak
from repro.des.rng import RandomStream


class GrantKind(enum.Enum):
    """What kind of transfer won the bus for this cycle."""

    REQUEST = "request"
    RESPONSE = "response"


class RequestCandidate(NamedTuple):
    """A deliverable processor request.

    NamedTuples rather than dataclasses: candidates are rebuilt every
    simulated bus cycle, so construction cost is on the hot path.
    """

    processor: int
    module: int
    issue_cycle: int


class ResponseCandidate(NamedTuple):
    """A module with a result ready for its response transfer."""

    module: int
    ready_cycle: int


class Grant(NamedTuple):
    """The arbitration outcome of one bus cycle."""

    kind: GrantKind
    processor: int | None
    module: int


class BusArbiter:
    """Grants the bus according to priority policy and tie-break rule."""

    def __init__(
        self,
        priority: Priority,
        tie_break: TieBreak,
        stream: RandomStream,
    ) -> None:
        self.priority = priority
        self.tie_break = tie_break
        self._stream = stream

    def arbitrate(
        self,
        requests: Sequence[RequestCandidate],
        responses: Sequence[ResponseCandidate],
    ) -> Grant | None:
        """Pick this cycle's transfer, or ``None`` to leave the bus idle."""
        if self.priority is Priority.PROCESSORS:
            ordered_classes = (GrantKind.REQUEST, GrantKind.RESPONSE)
        else:
            ordered_classes = (GrantKind.RESPONSE, GrantKind.REQUEST)
        for kind in ordered_classes:
            if kind is GrantKind.REQUEST and requests:
                chosen = self._pick_request(requests)
                return Grant(GrantKind.REQUEST, chosen.processor, chosen.module)
            if kind is GrantKind.RESPONSE and responses:
                chosen_response = self._pick_response(responses)
                return Grant(GrantKind.RESPONSE, None, chosen_response.module)
        return None

    # ------------------------------------------------------------------
    def _pick_request(self, candidates: Sequence[RequestCandidate]) -> RequestCandidate:
        if len(candidates) == 1:
            return candidates[0]
        if self.tie_break is TieBreak.RANDOM:
            return self._stream.choice(candidates)
        return min(candidates, key=lambda c: (c.issue_cycle, c.processor))

    def _pick_response(
        self, candidates: Sequence[ResponseCandidate]
    ) -> ResponseCandidate:
        if len(candidates) == 1:
            return candidates[0]
        if self.tie_break is TieBreak.RANDOM:
            return self._stream.choice(candidates)
        return min(candidates, key=lambda c: (c.ready_cycle, c.module))
