"""Section 3.2: the combinational approximation with priority to memories.

The exact chain of Section 3.1.1 is replaced by a memoryless profile: at
the start of every processor cycle all ``n`` processors are assumed to
submit fresh independent uniform requests, and requests directed to busy
modules are discarded.  The number of busy modules then follows the
classic distinct-modules distribution ``P(j) = C(m, j) Surj(n, j) / m^n``
and the same useful-cycle weights as the exact model produce the EBW.

Table 1 of the paper is symmetric in ``n`` and ``m``; the combinational
expression is not.  The paper therefore suggests symmetrising with
``n* = min(n, m)`` and ``m* = max(n, m)``; Table 2 prints the plain
(non-symmetric) values.  Both variants are implemented.
"""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority
from repro.core.results import ModelResult
from repro.models.bandwidth import ebw_from_busy_distribution
from repro.models.combinatorics import distinct_modules_pmf


def approximate_memory_priority_ebw(
    config: SystemConfig, symmetric: bool = False
) -> ModelResult:
    """Evaluate the Section 3.2 combinational model for ``config``.

    Parameters
    ----------
    config:
        System description; requires ``p = 1``, unbuffered, priority to
        memories (the model's hypotheses).
    symmetric:
        Apply the paper's symmetrisation ``(n, m) -> (min, max)``
        suggested by the symmetry of the exact results.  Table 2 uses
        ``False``.
    """
    _validate(config)
    n, m = config.processors, config.memories
    if symmetric:
        n, m = min(n, m), max(n, m)
    busy_pmf = distinct_modules_pmf(n, m)
    ebw = ebw_from_busy_distribution(busy_pmf, config.memory_cycle_ratio)
    method = "approx-memory-priority-symmetric" if symmetric else "approx-memory-priority"
    return ModelResult(
        config=config,
        ebw=ebw,
        method=method,
        details={"distinct_profile_processors": float(n)},
    )


def _validate(config: SystemConfig) -> None:
    if config.request_probability != 1.0:
        raise ConfigurationError(
            "the Section 3.2 model assumes p = 1 "
            f"(got p = {config.request_probability})"
        )
    if config.buffered:
        raise ConfigurationError(
            "the Section 3.2 model covers the unbuffered system"
        )
    if config.priority is not Priority.MEMORIES:
        raise ConfigurationError(
            "the Section 3.2 model assumes priority to memories"
        )
