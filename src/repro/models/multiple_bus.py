"""Multiple-bus reference model (ref [5] of the paper).

Section 7 of the paper compares its single multiplexed bus against the
authors' earlier multiple-bus network: "the 8x8 crossbar EBW value is
attained with m=14 and r=8 in the single-bus system; ... four buses are
needed with a multiple-bus network".  To regenerate that comparison we
implement the ref-[5] bandwidth: a system of ``n`` processors, ``m``
modules and ``b`` non-multiplexed buses serves ``min(x, b)`` of the ``x``
busy modules per (processor) cycle, and its EBW is the stationary mean
of ``min(x, b)``.

Both the exact occupancy-chain evaluation and the memoryless
combinational approximation (capping the distinct-module count at ``b``)
are provided.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.markov.occupancy import OccupancyChain
from repro.models.combinatorics import distinct_modules_pmf


def multiple_bus_exact_ebw(processors: int, modules: int, buses: int) -> float:
    """Exact multiple-bus bandwidth: stationary mean of ``min(x, b)``."""
    _validate(processors, modules, buses)
    chain = OccupancyChain(processors, modules, service_width=buses)
    return chain.expected_completions()


def multiple_bus_approximate_ebw(processors: int, modules: int, buses: int) -> float:
    """Memoryless multiple-bus bandwidth ``E[min(j, b)]`` with ``j`` the
    distinct-module count of fresh uniform requests."""
    _validate(processors, modules, buses)
    pmf = distinct_modules_pmf(processors, modules)
    return sum(min(j, buses) * probability for j, probability in pmf.items())


def minimum_buses_matching(
    processors: int, modules: int, target_ebw: float
) -> int | None:
    """Smallest bus count whose exact EBW reaches ``target_ebw``.

    Returns ``None`` when even ``b = min(n, m)`` buses (beyond which more
    buses cannot help) fall short of the target.
    """
    if target_ebw <= 0:
        raise ConfigurationError(f"target EBW must be positive, got {target_ebw}")
    ceiling = min(processors, modules)
    for buses in range(1, ceiling + 1):
        if multiple_bus_exact_ebw(processors, modules, buses) >= target_ebw:
            return buses
    return None


def minimum_buses_matching_rate(
    processors: int,
    modules: int,
    memory_cycle_ratio: int,
    target_requests_per_bus_cycle: float,
) -> int | None:
    """Smallest bus count matching a service *rate* in requests per ``t``.

    The multiple-bus network of ref [5] is non-multiplexed: a bus holds
    its processor-memory connection for a whole memory cycle ``r t``, so
    the network completes ``E[min(x, b)]`` requests per ``r t``.  The
    multiplexed single bus and the crossbar of this paper report EBW per
    processor cycle ``(r + 2) t``.  Comparing *systems* therefore means
    comparing rates per bus cycle ``t``:

        multiple-bus rate = ``E[min(x, b)] / r``
        single-bus rate   = ``EBW / (r + 2)``

    Under this normalisation the Section 7 sentence "four buses are
    needed with a multiple-bus network" (to match the 8x8 crossbar with
    m = 10, r = 8) reproduces exactly; see EXPERIMENTS.md.
    """
    if memory_cycle_ratio < 1:
        raise ConfigurationError(
            f"memory_cycle_ratio must be >= 1, got {memory_cycle_ratio}"
        )
    if target_requests_per_bus_cycle <= 0:
        raise ConfigurationError(
            "target rate must be positive, got "
            f"{target_requests_per_bus_cycle}"
        )
    ceiling = min(processors, modules)
    for buses in range(1, ceiling + 1):
        rate = multiple_bus_exact_ebw(processors, modules, buses) / memory_cycle_ratio
        if rate >= target_requests_per_bus_cycle:
            return buses
    return None


def _validate(processors: int, modules: int, buses: int) -> None:
    if processors < 1:
        raise ConfigurationError(f"processors must be >= 1, got {processors}")
    if modules < 1:
        raise ConfigurationError(f"modules must be >= 1, got {modules}")
    if buses < 1:
        raise ConfigurationError(f"buses must be >= 1, got {buses}")
