"""The Section 3 effective-bandwidth weighting.

Both the exact chain (Section 3.1.1) and the combinational approximation
(Section 3.2) convert a distribution ``P(x)`` over the number of busy
modules into an EBW through the same weights:

* ``x <= r + 1`` (case a): all ``x`` busy modules complete during the
  cycle; the useful-cycle fraction is ``(r + 2) / (r + 1 + x)``, so the
  state contributes ``x (r + 2) / (r + 1 + x)``;
* ``x >= r + 2`` (case b): the bus saturates at one transfer per cycle;
  the state contributes the ceiling ``(r + 2) / 2``.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.errors import ConfigurationError


def ebw_weight(busy_modules: int, memory_cycle_ratio: int) -> float:
    """Contribution of a state with ``x`` busy modules to the EBW."""
    if busy_modules < 0:
        raise ConfigurationError(f"busy module count must be >= 0: {busy_modules}")
    if memory_cycle_ratio < 1:
        raise ConfigurationError(f"r must be >= 1: {memory_cycle_ratio}")
    r = memory_cycle_ratio
    x = busy_modules
    if x == 0:
        return 0.0
    if x <= r + 1:
        return x * (r + 2) / (r + 1 + x)
    return (r + 2) / 2.0


def ebw_from_busy_distribution(
    busy_pmf: Mapping[int, float], memory_cycle_ratio: int
) -> float:
    """EBW of a busy-module distribution under the Section 3 weights.

    ``busy_pmf`` maps the number of busy modules ``x`` to its stationary
    probability ``P(x)``; the paper's formula is

        ``EBW = sum_{x<=r+1} x (r+2)/(r+1+x) P(x)
              + sum_{x>=r+2} (r+2)/2 P(x)``.
    """
    total_probability = sum(busy_pmf.values())
    if abs(total_probability - 1.0) > 1e-9:
        raise ConfigurationError(
            f"busy-module PMF sums to {total_probability}, expected 1"
        )
    return sum(
        probability * ebw_weight(x, memory_cycle_ratio)
        for x, probability in busy_pmf.items()
    )
