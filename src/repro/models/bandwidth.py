"""The Section 3 effective-bandwidth weighting.

Both the exact chain (Section 3.1.1) and the combinational approximation
(Section 3.2) convert a distribution ``P(x)`` over the number of busy
modules into an EBW through the same weights:

* ``x <= r + 1`` (case a): all ``x`` busy modules complete during the
  cycle; the useful-cycle fraction is ``(r + 2) / (r + 1 + x)``, so the
  state contributes ``x (r + 2) / (r + 1 + x)``;
* ``x >= r + 2`` (case b): the bus saturates at one transfer per cycle;
  the state contributes the ceiling ``(r + 2) / 2``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.config import SystemConfig
    from repro.core.results import ModelResult


def ebw_weight(busy_modules: int, memory_cycle_ratio: int) -> float:
    """Contribution of a state with ``x`` busy modules to the EBW."""
    if busy_modules < 0:
        raise ConfigurationError(f"busy module count must be >= 0: {busy_modules}")
    if memory_cycle_ratio < 1:
        raise ConfigurationError(f"r must be >= 1: {memory_cycle_ratio}")
    r = memory_cycle_ratio
    x = busy_modules
    if x == 0:
        return 0.0
    if x <= r + 1:
        return x * (r + 2) / (r + 1 + x)
    return (r + 2) / 2.0


def ebw_from_busy_distribution(
    busy_pmf: Mapping[int, float], memory_cycle_ratio: int
) -> float:
    """EBW of a busy-module distribution under the Section 3 weights.

    ``busy_pmf`` maps the number of busy modules ``x`` to its stationary
    probability ``P(x)``; the paper's formula is

        ``EBW = sum_{x<=r+1} x (r+2)/(r+1+x) P(x)
              + sum_{x>=r+2} (r+2)/2 P(x)``.
    """
    total_probability = sum(busy_pmf.values())
    if abs(total_probability - 1.0) > 1e-9:
        raise ConfigurationError(
            f"busy-module PMF sums to {total_probability}, expected 1"
        )
    return sum(
        probability * ebw_weight(x, memory_cycle_ratio)
        for x, probability in busy_pmf.items()
    )


def combinational_busy_pmf(config: "SystemConfig") -> dict[int, float]:
    """Busy-module distribution of the Section 3.2 combinational model.

    The memoryless request profile: each of the ``n`` processors submits
    a request with probability ``p`` (hypothesis (f)), requesters choose
    modules independently and uniformly (hypothesis (e)), and the number
    of busy modules is the number of *distinct* modules addressed.
    Mixing the classic distinct-modules distribution over the binomial
    number of requesters generalises the paper's ``p = 1`` expression to
    partial load:

        ``P(x) = sum_j C(n, j) p^j (1-p)^(n-j) P(x | j requests)``

    with ``P(x | j)`` from
    :func:`repro.models.combinatorics.distinct_modules_pmf`.  At
    ``p = 1`` this is exactly ``distinct_modules_pmf(n, m)``.
    """
    from math import comb

    from repro.models.combinatorics import distinct_modules_pmf

    n = config.processors
    m = config.memories
    p = config.request_probability
    pmf: dict[int, float] = {}
    if p < 1.0:
        pmf[0] = (1.0 - p) ** n
    for requests in range(1, n + 1):
        weight = comb(n, requests) * p**requests * (1.0 - p) ** (n - requests)
        if weight == 0.0:
            continue
        for busy, probability in distinct_modules_pmf(requests, m).items():
            pmf[busy] = pmf.get(busy, 0.0) + weight * probability
    return pmf


def combinational_bandwidth_ebw(config: "SystemConfig") -> "ModelResult":
    """The paper's combinational EBW model as a first-class evaluation.

    Builds the Section 3.2 busy-module profile
    (:func:`combinational_busy_pmf`) and weights it through the Section
    3 useful-cycle formula (:func:`ebw_from_busy_distribution`).  A
    deterministic function of the configuration alone - no seed, no
    cycle count - which is why its scenario cache keys ignore both (see
    :meth:`repro.scenarios.compiler.WorkUnit.payload`).

    The model describes the *unbuffered* machine (its weights assume a
    module is released only by a response transfer), so buffered
    configurations are rejected.
    """
    from repro.core.results import ModelResult

    if config.buffered:
        raise ConfigurationError(
            "the combinational bandwidth model covers the unbuffered "
            "system (Section 3.2); use simulation for buffered EBW"
        )
    busy_pmf = combinational_busy_pmf(config)
    ebw = ebw_from_busy_distribution(busy_pmf, config.memory_cycle_ratio)
    return ModelResult(
        config=config,
        ebw=ebw,
        method="combinational-bandwidth",
        details={
            "busy_states": float(len(busy_pmf)),
            "idle_probability": busy_pmf.get(0, 0.0),
            "mean_busy_modules": sum(x * q for x, q in busy_pmf.items()),
        },
    )
