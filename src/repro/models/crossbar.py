"""Crossbar reference models (the paper's comparison baseline).

The paper compares the multiplexed single bus against a *non-multiplexed*
``n x m`` crossbar whose basic cycle equals one processor cycle
``(r + 2) t``.  In such a crossbar every busy module completes one request
per cycle, so its EBW (requests serviced per processor cycle) is simply
the stationary mean number of busy modules.

Two classical evaluations are provided:

* :func:`crossbar_exact_ebw` - the Bhandarkar exact Markov chain (ref
  [1]): the occupancy chain with unlimited service width;
* :func:`crossbar_approximate_ebw` - Strecker's memoryless closed form
  ``m (1 - (1 - 1/m)^n)`` (ref [17]).

Both are independent of ``r``: the crossbar's cycle is *defined* as the
processor cycle, so EBW-per-processor-cycle depends only on ``n, m``.
For large ``n = m`` the exact value approaches the well-known ``~0.6 n``
mentioned in the paper's introduction.
"""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.results import ModelResult
from repro.markov.occupancy import OccupancyChain
from repro.models.combinatorics import expected_distinct_modules


def crossbar_exact_ebw(config: SystemConfig) -> ModelResult:
    """Exact crossbar EBW via the Bhandarkar occupancy chain.

    ``config.memory_cycle_ratio`` is carried through untouched so results
    can sit on the same axes as single-bus evaluations; it does not affect
    the value (see module docstring).  Requires ``p = 1``.
    """
    if config.request_probability != 1.0:
        raise ConfigurationError(
            "the exact crossbar chain assumes p = 1; "
            "use the simulator for p < 1 crossbar estimates"
        )
    chain = OccupancyChain(
        processors=config.processors,
        modules=config.memories,
        service_width=None,
    )
    ebw = chain.expected_busy()
    return ModelResult(
        config=config,
        ebw=ebw,
        method="crossbar-exact",
        details={"states": float(chain.chain.size)},
    )


def crossbar_approximate_ebw(config: SystemConfig) -> ModelResult:
    """Strecker's approximation ``m (1 - (1 - 1/m)^n)``."""
    ebw = expected_distinct_modules(config.processors, config.memories)
    return ModelResult(config=config, ebw=ebw, method="crossbar-approximate")
