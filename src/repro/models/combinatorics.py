"""Combinatorial helpers for the analytical models.

Exact integer combinatorics (Stirling numbers of the second kind,
surjection counts) and the classic distribution of the number of distinct
memory modules addressed by ``n`` independent uniform requests - the
memoryless building block of Section 3.2 and of the crossbar
approximations (refs [1], [17] of the paper).
"""

from __future__ import annotations

import functools
from math import comb
from typing import Iterator

from repro.core.errors import ConfigurationError


@functools.lru_cache(maxsize=None)
def stirling2(n: int, k: int) -> int:
    """Stirling number of the second kind ``S(n, k)``.

    Counts the partitions of an ``n``-element set into ``k`` non-empty
    unlabelled blocks.  Computed with the standard recurrence
    ``S(n, k) = k S(n-1, k) + S(n-1, k-1)``.
    """
    if n < 0 or k < 0:
        raise ConfigurationError(f"stirling2 needs n, k >= 0, got ({n}, {k})")
    if n == 0 and k == 0:
        return 1
    if n == 0 or k == 0:
        return 0
    if k > n:
        return 0
    return k * stirling2(n - 1, k) + stirling2(n - 1, k - 1)


def surjections(n: int, k: int) -> int:
    """Number of surjections from an ``n``-set onto a ``k``-set.

    Equals ``k! * S(n, k)``; this is the count written as a sum of
    multinomial coefficients over positive compositions in the paper's
    P2 expression (Section 4).
    """
    if n < 0 or k < 0:
        raise ConfigurationError(f"surjections needs n, k >= 0, got ({n}, {k})")
    return factorial(k) * stirling2(n, k)


@functools.lru_cache(maxsize=None)
def factorial(n: int) -> int:
    """``n!`` with caching (tiny ``n`` throughout this library)."""
    if n < 0:
        raise ConfigurationError(f"factorial needs n >= 0, got {n}")
    result = 1
    for i in range(2, n + 1):
        result *= i
    return result


def distinct_modules_pmf(requests: int, modules: int) -> dict[int, float]:
    """PMF of the number of distinct modules hit by uniform requests.

    ``P(j) = C(m, j) * Surj(n, j) / m^n`` for ``j`` distinct modules when
    ``n`` processors each choose one of ``m`` modules independently and
    uniformly.  This is the memoryless request profile underlying the
    Section 3.2 combinational model.
    """
    if requests < 1:
        raise ConfigurationError(f"requests must be >= 1, got {requests}")
    if modules < 1:
        raise ConfigurationError(f"modules must be >= 1, got {modules}")
    total = modules**requests
    pmf: dict[int, float] = {}
    for j in range(1, min(requests, modules) + 1):
        ways = comb(modules, j) * surjections(requests, j)
        if ways:
            pmf[j] = ways / total
    return pmf


def expected_distinct_modules(requests: int, modules: int) -> float:
    """Closed form ``m (1 - (1 - 1/m)^n)`` - Strecker's approximation.

    This is the classical expected number of distinct modules addressed,
    i.e. the crossbar bandwidth approximation of ref [17].
    """
    if requests < 1:
        raise ConfigurationError(f"requests must be >= 1, got {requests}")
    if modules < 1:
        raise ConfigurationError(f"modules must be >= 1, got {modules}")
    return modules * (1.0 - (1.0 - 1.0 / modules) ** requests)


def sole_requester_probability(processors: int, demanded: int) -> float:
    """The paper's ``P2`` (Section 4).

    Probability that the processor whose service just completed was the
    *only* one requesting its module, conditioned on ``c = demanded``
    distinct modules being demanded by the ``n = processors`` outstanding
    requests.  Distributing the other ``n - 1`` processors so that the
    remaining ``c - 1`` modules are all demanded, the served module is
    empty in ``Surj(n-1, c-1)`` of the ``Surj(n-1, c-1) + Surj(n-1, c)``
    equally-likely arrangements:

        ``P2 = Surj(n-1, c-1) / (Surj(n-1, c-1) + Surj(n-1, c))``

    Boundary behaviour matches the paper's model: ``P2 = 1`` when every
    module has exactly one requester (``c = n``) and ``P2 = 0`` when all
    processors pile on one module (``c = 1`` with ``n > 1``).
    """
    if processors < 1:
        raise ConfigurationError(f"processors must be >= 1, got {processors}")
    if not 1 <= demanded <= processors:
        raise ConfigurationError(
            f"demanded modules must lie in [1, processors], got {demanded}"
        )
    alone = surjections(processors - 1, demanded - 1)
    shared = surjections(processors - 1, demanded)
    total = alone + shared
    if total == 0:
        raise ConfigurationError(
            f"no arrangement realises c={demanded} with n={processors}"
        )
    return alone / total


def compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """All weak compositions of ``total`` into ``parts`` ordered parts.

    Exposed for tests that verify the surjection counts against the
    paper's multinomial-sum formulation of P2.
    """
    if parts < 0 or total < 0:
        raise ConfigurationError(
            f"compositions needs total, parts >= 0, got ({total}, {parts})"
        )
    if parts == 0:
        if total == 0:
            yield ()
        return
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for tail in compositions(total - head, parts - 1):
            yield (head,) + tail
