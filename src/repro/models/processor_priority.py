"""Section 4: the approximate reduced Markov chain, priority to processors.

With priority to processors the exact chain of Section 3.1 would need the
full per-module service-stage vector, which explodes combinatorially.
The paper instead lumps the state into four scalars ``(i, c, e, b)``:

* ``c`` - how many distinct memory modules are demanded (targeted by at
  least one of the ``n`` outstanding requests, delivered or still held by
  a processor);
* ``i`` - how many modules are part-way through their ``r``-cycle access;
* ``e`` - how many modules have completed the access but could not yet
  return the result because the bus was unavailable;
* ``b`` - bus status this cycle: ``0`` response transfer, ``1`` request
  transfer, ``2`` idle.

The chain steps once per *bus* cycle.  Four state classes exist:

* class 0: ``(i, c, 0, 2)`` with ``i = c`` - bus idle; possible only when
  every processor's request targets a busy module (requests to busy
  modules are not eligible for the bus, hypothesis (h));
* class 1: ``(i, c, e, 0)`` with ``1 + i + e = c`` - a response transfer
  in progress (the on-bus module is the ``1``); priority to processors
  makes a response possible only when no demanded module is idle, hence
  the equality;
* class 2: ``(i, c, e, 1)`` with ``1 + i + e = c`` - a request transfer
  in progress to the only idle demanded module;
* class 3: ``(i, c, e, 1)`` with ``1 + i + e < c`` - a request transfer
  with further idle-but-demanded modules still waiting for delivery.

Transition probabilities build on four quantities (paper notation):

* ``P1 = i / r`` - probability that one of the ``i`` in-progress accesses
  completes this cycle (module starts are serialised by the bus, so at
  most one access can complete per bus cycle);
* ``P2`` - probability that the just-served request was the *only* one
  directed to its module (see
  :func:`repro.models.combinatorics.sole_requester_probability`);
* ``P3 = (c - 1) / m`` and ``P4 = c / m`` - probabilities that the served
  processor's immediately re-issued request (``p = 1``) targets an
  already-demanded module.

The printed transition table in the only available scan of the paper is
OCR-damaged; the table implemented here is re-derived from the state
semantics above and validated two independent ways: it reproduces the
paper's state-space size ``S = (3 v^2 + 3 v - 2) / 2`` for
``r > v = min(n, m)`` (including the single unreachable state
``(0, v, v-1, 0)``), and it reproduces Table 3(b) numerically.

The EBW follows from the stationary bus utilisation (Section 2):
``EBW = (1 - P[b = 2]) (r + 2) / 2``.
"""

from __future__ import annotations

import functools

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError, ModelError
from repro.core.policy import Priority
from repro.core.results import ModelResult
from repro.markov.builder import build_chain
from repro.markov.chain import DiscreteTimeMarkovChain
from repro.models.combinatorics import sole_requester_probability

ReducedState = tuple[int, int, int, int]
"""``(i, c, e, b)`` - see module docstring."""

BUS_RESPONSE = 0
BUS_REQUEST = 1
BUS_IDLE = 2


def classify(state: ReducedState) -> int:
    """The paper's class number (0-3) of a reduced state.

    Raises :class:`ModelError` for vectors violating every class
    constraint (useful to catch transition-function bugs in tests).
    """
    i, c, e, b = state
    if i < 0 or c < 1 or e < 0:
        raise ModelError(f"malformed reduced state {state!r}")
    if b == BUS_IDLE and e == 0 and i == c:
        return 0
    if b == BUS_RESPONSE and 1 + i + e == c:
        return 1
    if b == BUS_REQUEST and 1 + i + e == c:
        return 2
    if b == BUS_REQUEST and 1 + i + e < c:
        return 3
    raise ModelError(f"state {state!r} matches no class constraint")


class ProcessorPriorityChain:
    """The Section 4 reduced chain for one ``(n, m, r)`` triple."""

    def __init__(self, processors: int, modules: int, memory_cycle_ratio: int) -> None:
        if processors < 1:
            raise ConfigurationError(f"processors must be >= 1, got {processors}")
        if modules < 1:
            raise ConfigurationError(f"modules must be >= 1, got {modules}")
        if memory_cycle_ratio < 1:
            raise ConfigurationError(
                f"memory_cycle_ratio must be >= 1, got {memory_cycle_ratio}"
            )
        self.processors = processors
        self.modules = modules
        self.memory_cycle_ratio = memory_cycle_ratio

    # ------------------------------------------------------------------
    # The P1..P4 probabilities (paper Section 4).
    # ------------------------------------------------------------------
    def p1(self, in_progress: int) -> float:
        """Completion probability ``i / r`` for ``i`` accessing modules."""
        if in_progress < 0 or in_progress > self.memory_cycle_ratio:
            raise ModelError(
                f"in-progress count {in_progress} outside [0, r={self.memory_cycle_ratio}]"
            )
        return in_progress / self.memory_cycle_ratio

    def p2(self, demanded: int) -> float:
        """Sole-requester probability for ``c`` demanded modules."""
        return sole_requester_probability(self.processors, demanded)

    def p3(self, demanded: int) -> float:
        """Re-request hits one of the *other* ``c - 1`` demanded modules."""
        return (demanded - 1) / self.modules

    def p4(self, demanded: int) -> float:
        """Re-request hits one of the ``c`` demanded modules."""
        return demanded / self.modules

    # ------------------------------------------------------------------
    def transition(self, state: ReducedState) -> dict[ReducedState, float]:
        """Successor distribution over one bus cycle."""
        state_class = classify(state)
        i, c, e, _ = state
        p1 = self.p1(i)
        successors: dict[ReducedState, float] = {}

        def add(successor: ReducedState, probability: float) -> None:
            if probability <= 0.0:
                return
            classify(successor)  # defensive: reject malformed successors
            successors[successor] = successors.get(successor, 0.0) + probability

        if state_class == 0:
            # Bus idle, all c demanded modules mid-access.  A completion
            # puts a response on the (free) bus next cycle.
            add((i - 1, c, 0, BUS_RESPONSE), p1)
            add((i, c, 0, BUS_IDLE), 1.0 - p1)
            return successors

        if state_class == 1:
            # Response transfer completes this cycle: the served module is
            # released, its processor immediately re-issues (p = 1).
            p2, p3, p4 = self.p2(c), self.p3(c), self.p4(c)
            to_new_module_kept = (1.0 - p2) * (1.0 - p4)
            to_busy_or_released = p2 * (1.0 - p3) + (1.0 - p2) * p4
            leaves_and_rejoins_busy = p2 * p3
            # --- a second access also completed this cycle (prob p1) ---
            add((i - 1, c - 1, e, BUS_RESPONSE), p1 * leaves_and_rejoins_busy)
            add((i - 1, c, e + 1, BUS_REQUEST), p1 * to_busy_or_released)
            add((i - 1, c + 1, e + 1, BUS_REQUEST), p1 * to_new_module_kept)
            # --- no other completion (prob 1 - p1) ---
            if e > 0:
                add((i, c - 1, e - 1, BUS_RESPONSE), (1.0 - p1) * leaves_and_rejoins_busy)
            else:
                add((i, c - 1, 0, BUS_IDLE), (1.0 - p1) * leaves_and_rejoins_busy)
            add((i, c, e, BUS_REQUEST), (1.0 - p1) * to_busy_or_released)
            add((i, c + 1, e, BUS_REQUEST), (1.0 - p1) * to_new_module_kept)
            return successors

        if state_class == 2:
            # Request transfer to the only idle demanded module; it starts
            # its access next cycle.  No processor is served this cycle.
            add((i, c, e, BUS_RESPONSE), p1)
            if e > 0:
                add((i + 1, c, e - 1, BUS_RESPONSE), 1.0 - p1)
            else:
                add((i + 1, c, 0, BUS_IDLE), 1.0 - p1)
            return successors

        # state_class == 3: request transfer with one more idle demanded
        # module still waiting; processor priority keeps the bus on
        # request transfers next cycle.
        add((i, c, e + 1, BUS_REQUEST), p1)
        add((i + 1, c, e, BUS_REQUEST), 1.0 - p1)
        return successors

    # ------------------------------------------------------------------
    @functools.cached_property
    def chain(self) -> DiscreteTimeMarkovChain[ReducedState]:
        """The reachable reduced chain from the first-request state."""
        initial: ReducedState = (0, 1, 0, BUS_REQUEST)
        return build_chain(initial, self.transition)

    @property
    def state_count(self) -> int:
        """Number of reachable states (paper: ``(3v^2+3v-2)/2`` for r > v)."""
        return self.chain.size

    def bus_idle_probability(self) -> float:
        """Stationary probability that the bus is idle (``b = 2``)."""
        pi = self.chain.stationary_distribution()
        return float(
            sum(
                probability
                for state, probability in zip(self.chain.states, pi)
                if state[3] == BUS_IDLE
            )
        )

    def ebw(self) -> float:
        """Effective bandwidth ``(1 - P[idle]) (r + 2) / 2``."""
        utilization = 1.0 - self.bus_idle_probability()
        return utilization * (self.memory_cycle_ratio + 2) / 2.0


def processor_priority_ebw(config: SystemConfig) -> ModelResult:
    """Evaluate the Section 4 reduced chain for ``config``.

    Requires ``p = 1``, no buffering and priority to processors.
    """
    if config.request_probability != 1.0:
        raise ConfigurationError(
            "the Section 4 model assumes p = 1 "
            f"(got p = {config.request_probability})"
        )
    if config.buffered:
        raise ConfigurationError("the Section 4 model covers the unbuffered system")
    if config.priority is not Priority.PROCESSORS:
        raise ConfigurationError(
            "the Section 4 model assumes priority to processors; "
            "use the Section 3 models for priority to memories"
        )
    model = ProcessorPriorityChain(
        config.processors, config.memories, config.memory_cycle_ratio
    )
    return ModelResult(
        config=config,
        ebw=model.ebw(),
        method="approx-processor-priority",
        details={
            "states": float(model.state_count),
            "bus_idle_probability": model.bus_idle_probability(),
        },
    )
