"""Section 3.1.1: the exact Markov chain with priority to memories.

With priority granted to memory modules and ``p = 1``, the paper shows
the memory-service timing vector ``r`` can be disregarded and the sorted
request-occupancy vector alone is a Markov state.  The chain is then the
multiple-bus chain of ref [5] with service width ``b = r + 1`` (the bus
serialisation admits at most ``r + 1`` completions per processor cycle),
and the EBW applies the useful-cycle weights of :mod:`repro.models.bandwidth`.

This model generates Table 1 of the paper.
"""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority
from repro.core.results import ModelResult
from repro.markov.occupancy import OccupancyChain
from repro.models.bandwidth import ebw_from_busy_distribution


def exact_memory_priority_ebw(config: SystemConfig) -> ModelResult:
    """Evaluate the Section 3.1.1 exact chain for ``config``.

    Requires ``p = 1``, no buffering and priority to memories - the
    hypotheses under which the paper derives the model.
    """
    _validate(config)
    chain = OccupancyChain(
        processors=config.processors,
        modules=config.memories,
        service_width=config.memory_cycle_ratio + 1,
    )
    busy_pmf = chain.busy_distribution()
    ebw = ebw_from_busy_distribution(busy_pmf, config.memory_cycle_ratio)
    return ModelResult(
        config=config,
        ebw=ebw,
        method="exact-memory-priority",
        details={
            "states": float(chain.chain.size),
            "mean_busy_modules": chain.expected_busy(),
        },
    )


def _validate(config: SystemConfig) -> None:
    if config.request_probability != 1.0:
        raise ConfigurationError(
            "the Section 3.1.1 exact model assumes p = 1 "
            f"(got p = {config.request_probability})"
        )
    if config.buffered:
        raise ConfigurationError(
            "the Section 3.1.1 exact model covers the unbuffered system"
        )
    if config.priority is not Priority.MEMORIES:
        raise ConfigurationError(
            "the Section 3.1.1 exact model assumes priority to memories; "
            "use the Section 4 model for priority to processors"
        )
