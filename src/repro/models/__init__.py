"""Analytical models of the paper.

* :mod:`repro.models.exact_memory_priority` - Section 3.1.1 exact chain;
* :mod:`repro.models.approx_memory_priority` - Section 3.2 combinational
  approximation (plain and symmetrised);
* :mod:`repro.models.processor_priority` - Section 4 reduced chain;
* :mod:`repro.models.crossbar` - crossbar baselines (refs [1], [17]);
* :mod:`repro.models.multiple_bus` - multiple-bus baseline (ref [5]);
* :mod:`repro.models.combinatorics` / :mod:`repro.models.bandwidth` -
  shared mathematical building blocks.
"""

from repro.models.approx_memory_priority import approximate_memory_priority_ebw
from repro.models.bandwidth import (
    combinational_bandwidth_ebw,
    combinational_busy_pmf,
    ebw_from_busy_distribution,
    ebw_weight,
)
from repro.models.crossbar import crossbar_approximate_ebw, crossbar_exact_ebw
from repro.models.exact_memory_priority import exact_memory_priority_ebw
from repro.models.multiple_bus import (
    minimum_buses_matching,
    minimum_buses_matching_rate,
    multiple_bus_approximate_ebw,
    multiple_bus_exact_ebw,
)
from repro.models.processor_priority import (
    ProcessorPriorityChain,
    processor_priority_ebw,
)

__all__ = [
    "exact_memory_priority_ebw",
    "approximate_memory_priority_ebw",
    "processor_priority_ebw",
    "ProcessorPriorityChain",
    "crossbar_exact_ebw",
    "crossbar_approximate_ebw",
    "multiple_bus_exact_ebw",
    "multiple_bus_approximate_ebw",
    "minimum_buses_matching",
    "minimum_buses_matching_rate",
    "ebw_weight",
    "ebw_from_busy_distribution",
    "combinational_busy_pmf",
    "combinational_bandwidth_ebw",
]
