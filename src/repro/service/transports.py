"""Worker transports: how lease-protocol messages reach a worker.

The coordinator speaks to abstract :class:`WorkerTransport` endpoints -
``send`` a message, ``receive`` whatever has arrived, ``alive`` to
detect death - and never learns how bytes move.  Two implementations
ship:

* :class:`SubprocessTransport` spawns ``repro-experiments sweep-work``
  locally and carries the protocol over the child's stdin/stdout as
  newline-delimited JSON (a daemon reader thread keeps receipt
  non-blocking).  Because the byte format is plain JSON lines, an ssh
  or batch-queue transport is the same class pointed at a different
  argv - nothing in coordinator or worker changes.
* :class:`LoopbackTransport` runs a real :class:`WorkerSession`
  in-process and synchronously.  It exists for tests: it makes
  coordinator scheduling deterministic and lets a "worker" be killed
  after exactly k results (``fail_after_results``), which is how the
  lease-retry property tests explore crash timings far faster than
  real subprocesses could.
"""

from __future__ import annotations

import queue
import subprocess
import sys
import threading
from typing import Any, Mapping, Protocol, Sequence

from repro.core.errors import ReproError
from repro.service import protocol
from repro.service.worker import WorkerSession


class WorkerTransport(Protocol):
    """One worker endpoint, whatever carries its bytes."""

    name: str

    def send(self, message: Mapping[str, Any]) -> None:
        """Deliver one message; silently drop if the worker is gone
        (the coordinator discovers death through :meth:`alive`)."""

    def receive(self) -> dict[str, Any] | None:
        """The next pending message from the worker, or ``None``."""

    def alive(self) -> bool:
        """Whether the worker can still produce messages."""

    def close(self) -> None:
        """Release resources; idempotent."""


def sweep_work_argv(exit_after: int | None = None) -> list[str]:
    """The argv that starts a local stdio worker in this environment."""
    argv = [sys.executable, "-m", "repro.experiments", "sweep-work"]
    if exit_after is not None:
        argv += ["--exit-after", str(exit_after)]
    return argv


class SubprocessTransport:
    """A local ``sweep-work`` subprocess speaking JSON lines on stdio."""

    def __init__(
        self, argv: Sequence[str] | None = None, name: str = "worker"
    ) -> None:
        self.name = name
        self._inbox: queue.Queue[dict[str, Any]] = queue.Queue()
        self._closed = False
        self._proc = subprocess.Popen(
            list(argv) if argv is not None else sweep_work_argv(),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # worker diagnostics join the coordinator's stderr
            text=True,
            bufsize=1,
        )
        self._reader = threading.Thread(
            target=self._drain_stdout, name=f"{name}-reader", daemon=True
        )
        self._reader.start()

    def _drain_stdout(self) -> None:
        assert self._proc.stdout is not None
        for line in self._proc.stdout:
            if not line.strip():
                continue
            try:
                self._inbox.put(protocol.decode_message(line))
            except ReproError:
                # A corrupt line means a broken worker; surface it as a
                # protocol error message so the coordinator retires the
                # worker instead of hanging.
                self._inbox.put(
                    protocol.error_message(
                        f"undecodable worker output: {line[:200]!r}"
                    )
                )

    # ------------------------------------------------------------------
    def send(self, message: Mapping[str, Any]) -> None:
        if self._closed or self._proc.stdin is None:
            return
        try:
            self._proc.stdin.write(protocol.encode_message(message) + "\n")
            self._proc.stdin.flush()
        except (BrokenPipeError, OSError, ValueError):
            # Dead or closing worker; alive() will report it.
            pass

    def receive(self) -> dict[str, Any] | None:
        try:
            return self._inbox.get_nowait()
        except queue.Empty:
            return None

    def alive(self) -> bool:
        # Queued messages from an already-dead process still count: the
        # coordinator must consume results a worker streamed before
        # dying.
        return not self._inbox.empty() or (
            not self._closed and self._proc.poll() is None
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            if self._proc.stdin is not None:
                self._proc.stdin.close()
        except OSError:  # pragma: no cover - already-broken pipe
            pass
        try:
            self._proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung worker
            self._proc.kill()
            self._proc.wait()
        self._reader.join(timeout=5)


class LoopbackTransport:
    """An in-process worker executing leases synchronously on ``send``.

    ``fail_after_results`` simulates a worker killed mid-lease: the
    session stops after streaming that many results in total - messages
    already "sent" stay delivered (a real pipe would have carried them),
    nothing later arrives, and :meth:`alive` turns ``False``.
    """

    def __init__(
        self,
        name: str = "loopback",
        fail_after_results: int | None = None,
    ) -> None:
        self.name = name
        self._inbox: list[dict[str, Any]] = []
        self._dead = False
        self._fail_after = fail_after_results

        def deliver(message: Mapping[str, Any]) -> None:
            if not self._dead:
                self._inbox.append(dict(message))

        def maybe_die(results_sent: int) -> None:
            if self._fail_after is not None and results_sent >= self._fail_after:
                self._dead = True
                raise _SimulatedKill()

        self._session = WorkerSession(deliver, result_hook=maybe_die)

    def send(self, message: Mapping[str, Any]) -> None:
        if self._dead:
            return
        try:
            if not self._session.handle(message):
                self._dead = True
        except _SimulatedKill:
            self._dead = True
        except ReproError as exc:
            self._inbox.append(protocol.error_message(str(exc)))
            self._dead = True

    def receive(self) -> dict[str, Any] | None:
        if self._inbox:
            return self._inbox.pop(0)
        return None

    def alive(self) -> bool:
        return bool(self._inbox) or not self._dead

    def close(self) -> None:
        self._dead = True


class _SimulatedKill(BaseException):
    """Raised inside a loopback worker to mimic SIGKILL mid-lease.

    Derives from ``BaseException`` so no library ``except Exception``
    can swallow it - like the real signal, nothing in the worker gets
    to handle it.
    """
