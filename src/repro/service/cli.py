"""The ``sweep-serve`` and ``sweep-work`` subcommands.

Usage::

    # Serve a scenario across 4 local subprocess workers:
    repro-experiments sweep-serve figure2 --workers 4

    # Same bytes as the serial run, any options the scenario takes:
    repro-experiments sweep-serve figure2 --workers 4 \\
        --kernel batch --metrics latency

    # A worker endpoint speaking the lease protocol on stdio (spawned
    # by sweep-serve; also usable behind ssh or a batch queue):
    repro-experiments sweep-work

Output contract: stdout carries exactly the unit lines the serial
``repro-experiments scenario <name>`` run would print, byte-identical
and already in canonical order (no sort step); scheduling diagnostics
go to stderr.  ``scenario --workers N`` is shorthand for the same
service path.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.core.errors import ReproError
from repro.scenarios.compiler import parse_shard
from repro.scenarios.execute import unit_line
from repro.scenarios.registry import load_scenario


def _add_shared_scenario_flags(parser: argparse.ArgumentParser) -> None:
    """Flags sweep-serve shares with the ``scenario`` subcommand."""
    parser.add_argument(
        "--shard",
        metavar="I/K",
        help="serve only shard I of K (1-based); merging all K shard "
        "outputs reproduces the unsharded output byte-for-byte",
    )
    parser.add_argument(
        "--cycles", type=int, metavar="N",
        help="override the spec's simulated cycles per unit",
    )
    parser.add_argument(
        "--seed", type=int, metavar="N",
        help="override the spec's replication base seed",
    )
    parser.add_argument(
        "--metrics", metavar="NAME", action="append", default=None,
        help="collect an extra per-unit metric family (repeatable)",
    )
    parser.add_argument(
        "--kernel",
        choices=("reference", "fast", "batch"),
        default="reference",
        help="simulation-loop implementation (see 'scenario --help')",
    )
    parser.add_argument(
        "--backend",
        choices=("numpy", "numba", "numba-parallel", "cupy"),
        default="numpy",
        help="array substrate for the batch kernel (requires "
        "--kernel batch)",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="workers reuse the shared result store (default on)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="shared store directory (default $REPRO_CACHE_DIR or "
        "~/.cache/repro-single-bus)",
    )


def serve_main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro-experiments sweep-serve ...``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep-serve",
        description="Run a scenario through the distributed sweep "
        "coordinator over local subprocess workers; stdout is "
        "byte-identical to the serial 'scenario' run.",
    )
    parser.add_argument(
        "scenario",
        help="registered scenario name or a .toml/.json spec file",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker subprocesses to lease work to (default 2)",
    )
    parser.add_argument(
        "--lease-size", type=int, default=None, metavar="N",
        help="units per lease (default: the planner's cost-weighted "
        "sizing, ~total cost/(4*workers), capped at 256 units)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="seconds a lease may run before its worker is declared "
        "failed and its range is re-leased (default 300)",
    )
    _add_shared_scenario_flags(parser)
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="report probe/dispatch telemetry on stderr after the run",
    )
    parser.add_argument(
        "--chaos-kill-after",
        type=int,
        default=None,
        metavar="K",
        help="fault-injection testing hook: the first worker exits "
        "abruptly after its K-th result, exercising lease retry",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be a positive integer")
    if args.lease_size is not None and args.lease_size < 1:
        parser.error("--lease-size must be a positive integer")
    if args.backend != "numpy" and args.kernel != "batch":
        parser.error("--backend requires --kernel batch")
    try:
        results = _serve(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for result in results:
        print(unit_line(result), flush=True)
    return 0


def _serve(args):
    from repro.scenarios.cli import apply_spec_overrides
    from repro.service.coordinator import DEFAULT_DEADLINE, run_service

    spec = load_scenario(args.scenario)
    spec = apply_spec_overrides(
        spec, cycles=args.cycles, seed=args.seed, metrics=args.metrics
    )
    shard = parse_shard(args.shard) if args.shard is not None else None
    started = time.time()
    telemetry: dict = {}
    results = run_service(
        spec,
        workers=args.workers,
        kernel=args.kernel,
        backend=args.backend,
        shard=shard,
        lease_size=args.lease_size,
        deadline=(
            args.deadline if args.deadline is not None else DEFAULT_DEADLINE
        ),
        cache_enabled=args.cache,
        cache_dir=args.cache_dir,
        chaos_kill_after=args.chaos_kill_after,
        telemetry=telemetry,
    )
    elapsed = time.time() - started
    served = sum(1 for result in results if result.cached)
    print(
        f"[sweep-serve {spec.name}: {len(results)} units over "
        f"{args.workers} workers in {elapsed:.1f}s, {served} from cache, "
        f"{telemetry.get('dispatched', 0)} dispatched]",
        file=sys.stderr,
    )
    if args.cache_stats:
        from repro.scenarios.cli import render_cache_stats

        print(render_cache_stats(None, telemetry), file=sys.stderr)
    return results


def work_main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro-experiments sweep-work``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep-work",
        description="Serve one sweep worker over the lease protocol on "
        "stdin/stdout (newline-delimited JSON).  Normally spawned by "
        "sweep-serve; run it behind ssh or a batch queue for remote "
        "fleets.",
    )
    parser.add_argument(
        "--exit-after",
        type=int,
        default=None,
        metavar="K",
        help="fault-injection testing hook: die abruptly (no cleanup) "
        "after streaming the K-th result",
    )
    args = parser.parse_args(argv)
    if args.exit_after is not None and args.exit_after < 1:
        parser.error("--exit-after must be a positive integer")
    from repro.service.worker import serve_stdio

    return serve_stdio(exit_after=args.exit_after)
