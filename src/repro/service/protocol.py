"""The lease protocol between sweep coordinator and workers.

One protocol, any transport.  Messages are single-line canonical JSON
objects with a ``"type"`` tag, so any byte pipe that can carry newline
delimited text - a subprocess's stdio, an ssh channel, a spool
directory of numbered files, a message queue - can carry the protocol
unchanged.  The conversation is deliberately tiny:

== ==================== ============================================
→  ``hello``             coordinator → worker: the full scenario spec
                         (file-schema mapping), kernel/backend, the
                         optional shard designator and the shared
                         cache configuration.  The worker compiles the
                         *same* deterministic unit list locally, so
                         leases can name positions instead of shipping
                         units.
←  ``ready``             worker → coordinator: unit count (checked
                         against the coordinator's own compile - a
                         mismatch means version skew) and the worker
                         pid.
→  ``lease``             an explicit list of positions into the
                         compiled unit list, with a lease id.  The
                         planner composes each list (fleet-affine
                         grouping, cost-weighted sizing), so positions
                         need not be contiguous; the worker evaluates
                         them in the order given.
←  ``result``            one evaluated unit: lease id, position,
                         global unit index, the evaluator's JSON
                         metrics payload (exact float round-trip, so
                         merged output is byte-identical to a serial
                         run) and whether it was served from cache.
←  ``lease_done``        the whole range has been streamed.
←  ``error``             the worker failed; the message is diagnostic
                         and the coordinator re-leases remaining work.
→  ``shutdown``          coordinator → worker: drain and exit.
== ==================== ============================================

Every constructor validates its fields; :func:`decode_message` rejects
anything that is not a JSON object with a known ``type`` so a corrupt
transport fails loudly instead of silently dropping work.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.errors import ConfigurationError
from repro.scenarios.spec import ScenarioSpec, spec_from_mapping

PROTOCOL_VERSION = 2
"""Bumped on any incompatible message-shape change; ``hello`` carries
it and workers reject mismatches, so mixed-version fleets fail fast.
Version 2 replaced the contiguous ``[start, stop)`` range lease with an
explicit position list, so planners can compose fleet-affine leases."""

MESSAGE_TYPES = frozenset(
    {"hello", "ready", "lease", "result", "lease_done", "error", "shutdown"}
)


def encode_message(message: Mapping[str, Any]) -> str:
    """One protocol message as one newline-free JSON line."""
    encoded = json.dumps(
        message, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    if "\n" in encoded:  # pragma: no cover - ensure_ascii forbids this
        raise ConfigurationError("protocol message encodes to multiple lines")
    return encoded


def decode_message(line: str) -> dict[str, Any]:
    """Parse and validate one protocol line."""
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ConfigurationError(
            f"undecodable protocol line: {line[:200]!r}"
        ) from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ConfigurationError(
            f"protocol messages are JSON objects with a 'type', got "
            f"{line[:200]!r}"
        )
    if message["type"] not in MESSAGE_TYPES:
        raise ConfigurationError(
            f"unknown protocol message type {message['type']!r}"
        )
    return message


# ----------------------------------------------------------------------
# Scenario specs on the wire.
# ----------------------------------------------------------------------
def spec_to_mapping(spec: ScenarioSpec) -> dict[str, Any]:
    """Encode ``spec`` in the TOML/JSON file schema.

    The inverse of :func:`repro.scenarios.spec.spec_from_mapping`, so a
    worker rebuilds an *identical* spec (hence, by compiler determinism,
    an identical unit list) from the ``hello`` message alone - no shared
    filesystem or registry state required.
    """
    payload = spec.payload()
    mapping: dict[str, Any] = {
        "name": payload["name"],
        "description": spec.description,
        "method": payload["method"],
        "cycles": payload["cycles"],
        "base": payload["base"],
        "grid": payload["grid"],
        "workload": payload["workload"],
        "replications": {
            "count": spec.plan.replications,
            "base_seed": spec.plan.base_seed,
        },
        "metrics": payload["metrics"],
    }
    if payload["warmup"] is not None:
        mapping["warmup"] = payload["warmup"]
    return mapping


def spec_from_wire(mapping: Mapping[str, Any]) -> ScenarioSpec:
    """Rebuild the scenario spec a ``hello`` message carries."""
    return spec_from_mapping(mapping)


# ----------------------------------------------------------------------
# Message constructors.
# ----------------------------------------------------------------------
def hello_message(
    spec: ScenarioSpec,
    kernel: str,
    backend: str,
    shard: tuple[int, int] | None = None,
    cache_dir: str | None = None,
    cache_enabled: bool = True,
) -> dict[str, Any]:
    """The coordinator's opening message."""
    return {
        "type": "hello",
        "protocol": PROTOCOL_VERSION,
        "spec": spec_to_mapping(spec),
        "kernel": kernel,
        "backend": backend,
        "shard": list(shard) if shard is not None else None,
        "cache": {"enabled": bool(cache_enabled), "dir": cache_dir},
    }


def ready_message(units: int, pid: int) -> dict[str, Any]:
    """The worker's handshake reply: how many units it compiled."""
    return {"type": "ready", "units": int(units), "pid": int(pid)}


def lease_message(lease_id: int, positions) -> dict[str, Any]:
    """Lease an explicit list of positions into the compiled unit list."""
    cleaned = [int(position) for position in positions]
    if not cleaned:
        raise ConfigurationError("a lease must name at least one position")
    if any(position < 0 for position in cleaned):
        raise ConfigurationError(
            f"lease positions must be non-negative, got {cleaned!r}"
        )
    if len(set(cleaned)) != len(cleaned):
        raise ConfigurationError(
            f"lease positions must be unique, got {cleaned!r}"
        )
    return {
        "type": "lease",
        "lease_id": int(lease_id),
        "positions": cleaned,
    }


def result_message(
    lease_id: int,
    position: int,
    index: int,
    metrics: Mapping[str, Any],
    cached: bool,
) -> dict[str, Any]:
    """One evaluated unit's metrics payload."""
    return {
        "type": "result",
        "lease_id": int(lease_id),
        "position": int(position),
        "index": int(index),
        "metrics": dict(metrics),
        "cached": bool(cached),
    }


def lease_done_message(lease_id: int) -> dict[str, Any]:
    """Every position of the lease has been streamed."""
    return {"type": "lease_done", "lease_id": int(lease_id)}


def error_message(message: str) -> dict[str, Any]:
    """A worker-side failure report."""
    return {"type": "error", "message": str(message)}


def shutdown_message() -> dict[str, Any]:
    """The coordinator's drain-and-exit request."""
    return {"type": "shutdown"}
