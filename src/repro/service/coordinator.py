"""The sweep coordinator: compile once, lease ranges, merge exactly.

The coordinator owns the canonical compiled unit list and drives any
number of :class:`~repro.service.transports.WorkerTransport` endpoints
through the lease protocol (:mod:`repro.service.protocol`):

* work is leased as **contiguous position ranges** of the unit list,
  carved from the low end of the outstanding set, so with healthy
  workers every lease is one dense block (deterministic ordering means
  no sort pass is needed at merge time - results land by position);
* every lease carries a **deadline**; a lease whose results stop
  arriving in time marks its worker failed, and the unfinished
  positions are re-leased to healthy workers (per-position retry
  budget, so a poisoned unit cannot loop forever);
* results are recorded **idempotently by position** - duplicates from a
  straggler that answered after being retired are accepted and ignored,
  which is safe because unit evaluation is deterministic: any two
  answers for one position are byte-identical;
* the merged outcome is the exact :class:`UnitResult` list a serial
  :func:`repro.scenarios.execute.run_units` call would produce -
  metrics payloads round-trip exactly through JSON, so rendered report
  lines are byte-identical whatever the worker count, lease sizing or
  mid-run crash history (property-tested in
  ``tests/properties/test_service_merge.py``).
"""

from __future__ import annotations

import dataclasses
import sys
import time
from typing import Any, Callable, Sequence

from repro.core.errors import ExperimentError
from repro.scenarios.compiler import compile_scenario, shard_units
from repro.scenarios.execute import UnitResult, result_from_metrics
from repro.scenarios.spec import ScenarioSpec
from repro.service import protocol
from repro.service.transports import WorkerTransport

DEFAULT_DEADLINE = 300.0
"""Seconds a lease may run before its worker is declared failed."""

DEFAULT_MAX_RETRIES = 3
"""Times one position may be re-leased before the sweep aborts."""


def default_lease_size(total_units: int, workers: int) -> int:
    """A lease size balancing dispatch overhead against retry waste.

    Four leases per worker keeps every worker busy while bounding the
    work lost to one crash at ~1/4 of a worker's share; clamped to
    [1, 256] so giant sweeps still stream progress.
    """
    return max(1, min((total_units + workers * 4 - 1) // (workers * 4), 256))


@dataclasses.dataclass
class _Lease:
    lease_id: int
    worker: int
    start: int
    stop: int
    issued: float
    remaining: set[int]
    active: bool = True


@dataclasses.dataclass
class _Worker:
    transport: WorkerTransport
    state: str = "new"  # new -> ready -> dead
    lease_id: int | None = None


class Coordinator:
    """Drive one compiled scenario across a set of worker transports."""

    def __init__(
        self,
        spec: ScenarioSpec,
        transports: Sequence[WorkerTransport],
        kernel: str = "reference",
        backend: str = "numpy",
        shard: tuple[int, int] | None = None,
        lease_size: int | None = None,
        deadline: float = DEFAULT_DEADLINE,
        max_retries: int = DEFAULT_MAX_RETRIES,
        cache_enabled: bool = True,
        cache_dir: str | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        poll_interval: float = 0.02,
    ) -> None:
        if not transports:
            raise ExperimentError("the sweep service needs at least one worker")
        units = compile_scenario(spec, kernel=kernel, backend=backend)
        if shard is not None:
            units = shard_units(units, shard[0], shard[1])
        self.spec = spec
        self.units = units
        self.kernel = kernel
        self.backend = backend
        self.shard = shard
        self.cache_enabled = cache_enabled
        self.cache_dir = cache_dir
        self.deadline = deadline
        self.max_retries = max_retries
        self.lease_size = (
            lease_size
            if lease_size is not None
            else default_lease_size(len(units), len(transports))
        )
        if self.lease_size < 1:
            raise ExperimentError(
                f"lease size must be >= 1, got {self.lease_size}"
            )
        self._clock = clock
        self._sleep = sleep
        self._poll_interval = poll_interval
        self._workers = [_Worker(transport) for transport in transports]
        self._leases: dict[int, _Lease] = {}
        self._next_lease_id = 0
        self._todo: list[int] = list(range(len(units)))
        self._metrics: dict[int, tuple[Any, bool]] = {}
        self._retries: dict[int, int] = {}
        self.leases_issued = 0
        self.leases_retried = 0

    # ------------------------------------------------------------------
    def run(self) -> list[UnitResult]:
        """Execute every unit and return results in canonical order."""
        hello = protocol.hello_message(
            self.spec,
            self.kernel,
            self.backend,
            shard=self.shard,
            cache_dir=self.cache_dir,
            cache_enabled=self.cache_enabled,
        )
        self._started = self._clock()
        for worker in self._workers:
            worker.transport.send(hello)
        try:
            while len(self._metrics) < len(self.units):
                progressed = self._drain_messages()
                self._retire_dead_workers()
                self._expire_leases()
                progressed |= self._assign_leases()
                if len(self._metrics) >= len(self.units):
                    break
                if not any(w.state != "dead" for w in self._workers):
                    missing = len(self.units) - len(self._metrics)
                    raise ExperimentError(
                        f"all sweep workers failed with {missing} "
                        f"unit(s) outstanding"
                    )
                if not progressed:
                    self._sleep(self._poll_interval)
        finally:
            for worker in self._workers:
                if worker.state != "dead":
                    worker.transport.send(protocol.shutdown_message())
                worker.transport.close()
        return [
            result_from_metrics(self.units[position], metrics, cached)
            for position, (metrics, cached) in sorted(self._metrics.items())
        ]

    # ------------------------------------------------------------------
    def _drain_messages(self) -> bool:
        progressed = False
        for worker_index, worker in enumerate(self._workers):
            while True:
                message = worker.transport.receive()
                if message is None:
                    break
                progressed = True
                self._handle_message(worker_index, message)
        return progressed

    def _handle_message(self, worker_index: int, message: dict) -> None:
        worker = self._workers[worker_index]
        kind = message["type"]
        if kind == "ready":
            if message["units"] != len(self.units):
                worker.state = "dead"
                raise ExperimentError(
                    f"worker {worker.transport.name} compiled "
                    f"{message['units']} units, coordinator compiled "
                    f"{len(self.units)}: coordinator and workers run "
                    f"different code versions"
                )
            if worker.state == "new":
                worker.state = "ready"
        elif kind == "result":
            position = message["position"]
            lease = self._leases.get(message["lease_id"])
            if lease is not None:
                lease.remaining.discard(position)
            if position not in self._metrics:
                # Deterministic evaluation makes duplicates (from
                # retried leases or retired stragglers) byte-identical,
                # so first-writer-wins is exact, not approximate.
                self._metrics[position] = (
                    message["metrics"],
                    bool(message.get("cached", False)),
                )
        elif kind == "lease_done":
            lease = self._leases.get(message["lease_id"])
            if lease is not None:
                lease.active = False
                if lease.remaining:
                    # A done lease with unstreamed positions is a
                    # protocol violation; requeue rather than hang.
                    self._requeue(lease)
            if worker.lease_id == message["lease_id"]:
                worker.lease_id = None
        elif kind == "error":
            print(
                f"[sweep] worker {worker.transport.name} failed: "
                f"{message.get('message', '')}",
                file=sys.stderr,
            )
            self._fail_worker(worker_index)
        # hello/lease/shutdown never travel worker -> coordinator;
        # decode_message already rejected unknown types.

    # ------------------------------------------------------------------
    def _retire_dead_workers(self) -> None:
        for worker_index, worker in enumerate(self._workers):
            if worker.state != "dead" and not worker.transport.alive():
                self._fail_worker(worker_index)

    def _expire_leases(self) -> None:
        now = self._clock()
        # The handshake honours the same deadline: a worker that never
        # answers hello must not stall the sweep.
        for worker_index, worker in enumerate(self._workers):
            if worker.state == "new" and now - self._started > self.deadline:
                print(
                    f"[sweep] worker {worker.transport.name} never "
                    f"finished its handshake within {self.deadline:g}s; "
                    f"retiring it",
                    file=sys.stderr,
                )
                self._fail_worker(worker_index)
        for lease in list(self._leases.values()):
            if not lease.active:
                continue
            if now - lease.issued > self.deadline:
                worker = self._workers[lease.worker]
                print(
                    f"[sweep] lease {lease.lease_id} "
                    f"[{lease.start},{lease.stop}) on worker "
                    f"{worker.transport.name} exceeded its "
                    f"{self.deadline:g}s deadline; retiring worker",
                    file=sys.stderr,
                )
                self._fail_worker(lease.worker)

    def _fail_worker(self, worker_index: int) -> None:
        worker = self._workers[worker_index]
        if worker.state == "dead":
            return
        # Drain anything the worker streamed before dying: those
        # results are valid, paid-for work.
        while True:
            message = worker.transport.receive()
            if message is None:
                break
            if message["type"] in ("result", "ready", "lease_done"):
                self._handle_message(worker_index, message)
        worker.state = "dead"
        worker.transport.close()
        if worker.lease_id is not None:
            lease = self._leases.get(worker.lease_id)
            worker.lease_id = None
            if lease is not None and lease.active:
                lease.active = False
                self._requeue(lease)

    def _requeue(self, lease: _Lease) -> None:
        requeued = [
            position
            for position in sorted(lease.remaining)
            if position not in self._metrics
        ]
        if not requeued:
            return
        for position in requeued:
            self._retries[position] = self._retries.get(position, 0) + 1
            if self._retries[position] > self.max_retries:
                raise ExperimentError(
                    f"unit position {position} (index "
                    f"{self.units[position].index}) failed after "
                    f"{self.max_retries} lease retries"
                )
        self.leases_retried += 1
        self._todo = sorted(set(self._todo).union(requeued))

    def _assign_leases(self) -> bool:
        progressed = False
        for worker_index, worker in enumerate(self._workers):
            if worker.state != "ready" or worker.lease_id is not None:
                continue
            block = self._carve_block()
            if not block:
                break
            lease = _Lease(
                lease_id=self._next_lease_id,
                worker=worker_index,
                start=block[0],
                stop=block[-1] + 1,
                issued=self._clock(),
                remaining=set(block),
            )
            self._next_lease_id += 1
            self._leases[lease.lease_id] = lease
            worker.lease_id = lease.lease_id
            self.leases_issued += 1
            worker.transport.send(
                protocol.lease_message(lease.lease_id, lease.start, lease.stop)
            )
            progressed = True
        return progressed

    def _carve_block(self) -> list[int]:
        """The next contiguous run of outstanding positions to lease.

        Positions that gained results while queued (idempotent
        duplicates from retired stragglers) are skipped; the block ends
        at the first gap so every lease is one dense ``[start, stop)``
        range.
        """
        while self._todo and self._todo[0] in self._metrics:
            self._todo.pop(0)
        if not self._todo:
            return []
        block = [self._todo[0]]
        while (
            len(block) < self.lease_size
            and len(block) < len(self._todo)
            and self._todo[len(block)] == block[-1] + 1
            and self._todo[len(block)] not in self._metrics
        ):
            block.append(self._todo[len(block)])
        del self._todo[: len(block)]
        return block


def run_service(
    spec: ScenarioSpec,
    workers: int = 2,
    kernel: str = "reference",
    backend: str = "numpy",
    shard: tuple[int, int] | None = None,
    lease_size: int | None = None,
    deadline: float = DEFAULT_DEADLINE,
    cache_enabled: bool = True,
    cache_dir: str | None = None,
    chaos_kill_after: int | None = None,
) -> list[UnitResult]:
    """Run ``spec`` under the coordinator with local subprocess workers.

    The one-call service entry point behind ``repro-experiments
    sweep-serve`` and ``scenario --workers N``.  ``chaos_kill_after``
    is the fault-injection hook for tests and the CI smoke job: the
    first worker is spawned with ``--exit-after`` so it dies abruptly
    mid-lease, exercising the retry path on a real subprocess fleet.
    """
    from repro.parallel.cache import reset_code_version_tag
    from repro.service.transports import SubprocessTransport, sweep_work_argv

    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    # A coordinator may be long-lived (or embedded in a long-lived
    # process); never let it stamp a version tag memoized before the
    # sources last changed.
    reset_code_version_tag()
    transports = [
        SubprocessTransport(
            sweep_work_argv(
                exit_after=chaos_kill_after if index == 0 else None
            ),
            name=f"worker-{index}",
        )
        for index in range(workers)
    ]
    coordinator = Coordinator(
        spec,
        transports,
        kernel=kernel,
        backend=backend,
        shard=shard,
        lease_size=lease_size,
        deadline=deadline,
        cache_enabled=cache_enabled,
        cache_dir=cache_dir,
    )
    return coordinator.run()
