"""The sweep coordinator: compile once, plan, lease, merge exactly.

The coordinator owns the canonical compiled unit list and drives any
number of :class:`~repro.service.transports.WorkerTransport` endpoints
through the lease protocol (:mod:`repro.service.protocol`):

* before any dispatch, a **pre-lease cache probe**
  (:func:`repro.scenarios.plan.probe_cached`) resolves every
  already-cached position against the shared store, so warm or resumed
  sweeps never ship cached work to workers (a fully-warm sweep
  dispatches zero units and skips the handshake entirely);
* the remaining work is cut by the **sweep planner**
  (:func:`repro.scenarios.plan.carve_leases`) into position-list
  leases: fleet-affine grouping keeps same-shape batch units together
  (one vectorized fleet call per group on the worker) and leases are
  sized by estimated cost instead of unit count;
* every lease carries a **deadline**; a lease whose results stop
  arriving in time marks its worker failed, and the unfinished
  positions are re-leased to healthy workers (per-position retry
  budget, so a poisoned unit cannot loop forever);
* results are recorded **idempotently by position** - duplicates from a
  straggler that answered after being retired are accepted and ignored,
  which is safe because unit evaluation is deterministic: any two
  answers for one position are byte-identical;
* the merged outcome is the exact :class:`UnitResult` list a serial
  :func:`repro.scenarios.execute.run_units` call would produce -
  metrics payloads round-trip exactly through JSON, so rendered report
  lines are byte-identical whatever the worker count, lease sizing or
  mid-run crash history (property-tested in
  ``tests/properties/test_service_merge.py``).
"""

from __future__ import annotations

import dataclasses
import sys
import time
from typing import Any, Callable, Sequence

from repro.core.errors import ConfigurationError, ExperimentError
from repro.scenarios.compiler import compile_scenario, shard_units
from repro.scenarios.execute import UnitResult, result_from_metrics
from repro.scenarios.spec import ScenarioSpec
from repro.service import protocol
from repro.service.transports import WorkerTransport

DEFAULT_DEADLINE = 300.0
"""Seconds a lease may run before its worker is declared failed."""

DEFAULT_MAX_RETRIES = 3
"""Times one position may be re-leased before the sweep aborts."""

PLAN_MODES = ("affine", "contiguous")
"""``affine`` groups leases by lockstep fleet key (the planner
default); ``contiguous`` keeps the historical dense-range carving (the
benchmark's control arm)."""


def default_lease_size(total_units: int, workers: int) -> int:
    """A count-based lease size balancing dispatch overhead and retry waste.

    Four leases per worker keeps every worker busy while bounding the
    work lost to one crash at ~1/4 of a worker's share; clamped to
    [1, 256] so giant sweeps still stream progress.  Retained as the
    reference sizing rule; the planner's cost-weighted carving
    (:func:`repro.scenarios.plan.carve_leases`) generalizes it and is
    what the coordinator uses when no explicit ``lease_size`` is given.
    """
    return max(1, min((total_units + workers * 4 - 1) // (workers * 4), 256))


@dataclasses.dataclass
class _Lease:
    lease_id: int
    worker: int
    positions: tuple[int, ...]
    issued: float
    remaining: set[int]
    active: bool = True


@dataclasses.dataclass
class _Worker:
    transport: WorkerTransport
    state: str = "new"  # new -> ready -> dead
    lease_id: int | None = None


class Coordinator:
    """Drive one compiled scenario across a set of worker transports."""

    def __init__(
        self,
        spec: ScenarioSpec,
        transports: Sequence[WorkerTransport],
        kernel: str = "reference",
        backend: str = "numpy",
        shard: tuple[int, int] | None = None,
        lease_size: int | None = None,
        plan_mode: str = "affine",
        deadline: float = DEFAULT_DEADLINE,
        max_retries: int = DEFAULT_MAX_RETRIES,
        cache_enabled: bool = True,
        cache_dir: str | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        poll_interval: float = 0.02,
    ) -> None:
        if not transports:
            raise ExperimentError("the sweep service needs at least one worker")
        if plan_mode not in PLAN_MODES:
            raise ExperimentError(
                f"unknown plan mode {plan_mode!r}; known modes: "
                f"{', '.join(PLAN_MODES)}"
            )
        units = compile_scenario(spec, kernel=kernel, backend=backend)
        if shard is not None:
            units = shard_units(units, shard[0], shard[1])
        self.spec = spec
        self.units = units
        self.kernel = kernel
        self.backend = backend
        self.shard = shard
        self.cache_enabled = cache_enabled
        self.cache_dir = cache_dir
        self.deadline = deadline
        self.max_retries = max_retries
        self.plan_mode = plan_mode
        if lease_size is not None and lease_size < 1:
            raise ExperimentError(
                f"lease size must be >= 1, got {lease_size}"
            )
        self.lease_size = lease_size
        self._clock = clock
        self._sleep = sleep
        self._poll_interval = poll_interval
        self._workers = [_Worker(transport) for transport in transports]
        self._leases: dict[int, _Lease] = {}
        self._next_lease_id = 0
        self._queue: list[list[int]] = []
        self._metrics: dict[int, tuple[Any, bool]] = {}
        self._retries: dict[int, int] = {}
        self.leases_issued = 0
        self.leases_retried = 0
        self.units_dispatched = 0
        self.probe_hits = 0
        self.probe_stats = None

    # ------------------------------------------------------------------
    def run(self) -> list[UnitResult]:
        """Execute every unit and return results in canonical order."""
        self._started = self._clock()
        self._probe_cache()
        self._queue = self._plan_leases(
            [
                position
                for position in range(len(self.units))
                if position not in self._metrics
            ]
        )
        if self._queue:
            # A fully-warm sweep skips the handshake entirely: there is
            # nothing to dispatch, so workers need not compile.
            hello = protocol.hello_message(
                self.spec,
                self.kernel,
                self.backend,
                shard=self.shard,
                cache_dir=self.cache_dir,
                cache_enabled=self.cache_enabled,
            )
            for worker in self._workers:
                worker.transport.send(hello)
        try:
            while len(self._metrics) < len(self.units):
                progressed = self._drain_messages()
                self._retire_dead_workers()
                self._expire_leases()
                progressed |= self._assign_leases()
                if len(self._metrics) >= len(self.units):
                    break
                if not any(w.state != "dead" for w in self._workers):
                    missing = len(self.units) - len(self._metrics)
                    raise ExperimentError(
                        f"all sweep workers failed with {missing} "
                        f"unit(s) outstanding"
                    )
                if not progressed:
                    self._sleep(self._poll_interval)
        finally:
            for worker in self._workers:
                if worker.state != "dead":
                    worker.transport.send(protocol.shutdown_message())
                worker.transport.close()
        return [
            result_from_metrics(self.units[position], metrics, cached)
            for position, (metrics, cached) in sorted(self._metrics.items())
        ]

    # ------------------------------------------------------------------
    def _probe_cache(self) -> None:
        """Resolve already-cached positions before any dispatch.

        One batched probe against the shared store fills
        :attr:`_metrics` with every valid cached value, so those
        positions are never leased.  A malformed entry is skipped (the
        worker recomputes it); a broken cache location only disables
        the probe, never the sweep.
        """
        if not self.cache_enabled:
            return
        from repro.parallel.cache import ResultCache
        from repro.scenarios.plan import probe_cached

        try:
            cache = ResultCache(cache_dir=self.cache_dir)
        except (ConfigurationError, OSError) as exc:
            print(
                f"[sweep] pre-lease cache probe disabled: {exc}",
                file=sys.stderr,
            )
            return
        self.probe_stats = cache.stats
        found = probe_cached(self.units, range(len(self.units)), cache)
        for position, value in sorted(found.items()):
            try:
                result_from_metrics(self.units[position], value, True)
            except ExperimentError:
                continue
            self._metrics[position] = (value, True)
            self.probe_hits += 1

    def _plan_leases(self, positions: list[int]) -> list[list[int]]:
        """Cut the unresolved positions into the lease queue."""
        from repro.scenarios.plan import carve_leases

        return carve_leases(
            self.units,
            positions,
            workers=len(self._workers),
            lease_size=self.lease_size,
            affine=self.plan_mode == "affine",
        )

    # ------------------------------------------------------------------
    def _drain_messages(self) -> bool:
        progressed = False
        for worker_index, worker in enumerate(self._workers):
            while True:
                message = worker.transport.receive()
                if message is None:
                    break
                progressed = True
                self._handle_message(worker_index, message)
        return progressed

    def _handle_message(self, worker_index: int, message: dict) -> None:
        worker = self._workers[worker_index]
        kind = message["type"]
        if kind == "ready":
            if message["units"] != len(self.units):
                worker.state = "dead"
                raise ExperimentError(
                    f"worker {worker.transport.name} compiled "
                    f"{message['units']} units, coordinator compiled "
                    f"{len(self.units)}: coordinator and workers run "
                    f"different code versions"
                )
            if worker.state == "new":
                worker.state = "ready"
        elif kind == "result":
            position = message["position"]
            lease = self._leases.get(message["lease_id"])
            if lease is not None:
                lease.remaining.discard(position)
            if position not in self._metrics:
                # Deterministic evaluation makes duplicates (from
                # retried leases or retired stragglers) byte-identical,
                # so first-writer-wins is exact, not approximate.
                self._metrics[position] = (
                    message["metrics"],
                    bool(message.get("cached", False)),
                )
        elif kind == "lease_done":
            lease = self._leases.get(message["lease_id"])
            if lease is not None:
                lease.active = False
                if lease.remaining:
                    # A done lease with unstreamed positions is a
                    # protocol violation; requeue rather than hang.
                    self._requeue(lease)
            if worker.lease_id == message["lease_id"]:
                worker.lease_id = None
        elif kind == "error":
            print(
                f"[sweep] worker {worker.transport.name} failed: "
                f"{message.get('message', '')}",
                file=sys.stderr,
            )
            self._fail_worker(worker_index)
        # hello/lease/shutdown never travel worker -> coordinator;
        # decode_message already rejected unknown types.

    # ------------------------------------------------------------------
    def _retire_dead_workers(self) -> None:
        for worker_index, worker in enumerate(self._workers):
            if worker.state != "dead" and not worker.transport.alive():
                self._fail_worker(worker_index)

    def _expire_leases(self) -> None:
        now = self._clock()
        # The handshake honours the same deadline: a worker that never
        # answers hello must not stall the sweep.
        for worker_index, worker in enumerate(self._workers):
            if worker.state == "new" and now - self._started > self.deadline:
                print(
                    f"[sweep] worker {worker.transport.name} never "
                    f"finished its handshake within {self.deadline:g}s; "
                    f"retiring it",
                    file=sys.stderr,
                )
                self._fail_worker(worker_index)
        for lease in list(self._leases.values()):
            if not lease.active:
                continue
            if now - lease.issued > self.deadline:
                worker = self._workers[lease.worker]
                print(
                    f"[sweep] lease {lease.lease_id} "
                    f"({len(lease.positions)} position(s)) on worker "
                    f"{worker.transport.name} exceeded its "
                    f"{self.deadline:g}s deadline; retiring worker",
                    file=sys.stderr,
                )
                self._fail_worker(lease.worker)

    def _fail_worker(self, worker_index: int) -> None:
        worker = self._workers[worker_index]
        if worker.state == "dead":
            return
        # Drain anything the worker streamed before dying: those
        # results are valid, paid-for work.
        while True:
            message = worker.transport.receive()
            if message is None:
                break
            if message["type"] in ("result", "ready", "lease_done"):
                self._handle_message(worker_index, message)
        worker.state = "dead"
        worker.transport.close()
        if worker.lease_id is not None:
            lease = self._leases.get(worker.lease_id)
            worker.lease_id = None
            if lease is not None and lease.active:
                lease.active = False
                self._requeue(lease)

    def _requeue(self, lease: _Lease) -> None:
        requeued = [
            position
            for position in sorted(lease.remaining)
            if position not in self._metrics
        ]
        if not requeued:
            return
        for position in requeued:
            self._retries[position] = self._retries.get(position, 0) + 1
            if self._retries[position] > self.max_retries:
                raise ExperimentError(
                    f"unit position {position} (index "
                    f"{self.units[position].index}) failed after "
                    f"{self.max_retries} lease retries"
                )
        self.leases_retried += 1
        self._queue.append(requeued)

    def _assign_leases(self) -> bool:
        progressed = False
        for worker_index, worker in enumerate(self._workers):
            if worker.state != "ready" or worker.lease_id is not None:
                continue
            positions = self._next_lease_positions()
            if not positions:
                break
            lease = _Lease(
                lease_id=self._next_lease_id,
                worker=worker_index,
                positions=tuple(positions),
                issued=self._clock(),
                remaining=set(positions),
            )
            self._next_lease_id += 1
            self._leases[lease.lease_id] = lease
            worker.lease_id = lease.lease_id
            self.leases_issued += 1
            self.units_dispatched += len(positions)
            worker.transport.send(
                protocol.lease_message(lease.lease_id, lease.positions)
            )
            progressed = True
        return progressed

    def _next_lease_positions(self) -> list[int]:
        """The planner's next lease, minus positions already resolved.

        Positions that gained results while queued (idempotent
        duplicates from retired stragglers) are skipped; an entry that
        empties out entirely is dropped and the next one tried.
        """
        while self._queue:
            entry = self._queue.pop(0)
            positions = [
                position
                for position in entry
                if position not in self._metrics
            ]
            if positions:
                return positions
        return []


def run_service(
    spec: ScenarioSpec,
    workers: int = 2,
    kernel: str = "reference",
    backend: str = "numpy",
    shard: tuple[int, int] | None = None,
    lease_size: int | None = None,
    plan_mode: str = "affine",
    deadline: float = DEFAULT_DEADLINE,
    cache_enabled: bool = True,
    cache_dir: str | None = None,
    chaos_kill_after: int | None = None,
    telemetry: dict | None = None,
) -> list[UnitResult]:
    """Run ``spec`` under the coordinator with local subprocess workers.

    The one-call service entry point behind ``repro-experiments
    sweep-serve`` and ``scenario --workers N``.  ``chaos_kill_after``
    is the fault-injection hook for tests and the CI smoke job: the
    first worker is spawned with ``--exit-after`` so it dies abruptly
    mid-lease, exercising the retry path on a real subprocess fleet.
    ``telemetry``, when given, is filled in place with the run's
    planning counters (units, dispatched, probe hits, the probe
    cache's :class:`~repro.parallel.cache.CacheStats`, lease counts)
    for CLI reporting.
    """
    from repro.parallel.cache import reset_code_version_tag
    from repro.service.transports import SubprocessTransport, sweep_work_argv

    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    # A coordinator may be long-lived (or embedded in a long-lived
    # process); never let it stamp a version tag memoized before the
    # sources last changed.
    reset_code_version_tag()
    transports = [
        SubprocessTransport(
            sweep_work_argv(
                exit_after=chaos_kill_after if index == 0 else None
            ),
            name=f"worker-{index}",
        )
        for index in range(workers)
    ]
    coordinator = Coordinator(
        spec,
        transports,
        kernel=kernel,
        backend=backend,
        shard=shard,
        lease_size=lease_size,
        plan_mode=plan_mode,
        deadline=deadline,
        cache_enabled=cache_enabled,
        cache_dir=cache_dir,
    )
    results = coordinator.run()
    if telemetry is not None:
        telemetry.update(
            units=len(coordinator.units),
            dispatched=coordinator.units_dispatched,
            probe_hits=coordinator.probe_hits,
            probe_stats=coordinator.probe_stats,
            leases_issued=coordinator.leases_issued,
            leases_retried=coordinator.leases_retried,
        )
    return results
