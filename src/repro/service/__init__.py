"""Distributed sweep service: coordinator, workers, lease protocol.

This package turns the scenario compiler's shardable work-unit lists
(PR 2) and the cache's content-addressed keys into an actual
multi-worker *service*:

* :mod:`repro.service.protocol` - the transport-agnostic lease
  protocol (newline-delimited JSON messages);
* :mod:`repro.service.worker` - the worker-side protocol machine and
  the stdio server behind ``repro-experiments sweep-work``;
* :mod:`repro.service.transports` - how messages move: a local
  subprocess transport (stdio pipes) and an in-process loopback
  transport for deterministic tests;
* :mod:`repro.service.coordinator` - compile once, lease contiguous
  unit ranges, track deadlines, retry failed/straggling workers, and
  merge results byte-identical to a serial run;
* :mod:`repro.service.cli` - the ``sweep-serve`` / ``sweep-work``
  subcommands and the machinery behind ``scenario --workers N``.

All workers share one concurrent :class:`repro.parallel.cache.ResultCache`
store (sharded content-addressed layout, crash-safe writes), so a fleet
deduplicates work across workers, runs and machines.
"""

from repro.service.coordinator import Coordinator, run_service
from repro.service.transports import (
    LoopbackTransport,
    SubprocessTransport,
    WorkerTransport,
)
from repro.service.worker import WorkerSession, serve_stdio

__all__ = [
    "Coordinator",
    "run_service",
    "WorkerSession",
    "serve_stdio",
    "WorkerTransport",
    "SubprocessTransport",
    "LoopbackTransport",
]
