"""The worker side of the sweep service.

:class:`WorkerSession` is the transport-agnostic protocol machine: feed
it decoded messages, and it emits replies through the ``send`` callable
it was constructed with.  :func:`serve_stdio` wires a session to
stdin/stdout as newline-delimited JSON - the form ``repro-experiments
sweep-work`` runs, whether spawned by the local subprocess transport or
remotely (``ssh host repro-experiments sweep-work`` works unchanged,
which is what keeps the lease protocol transport-agnostic).

A worker compiles the scenario it receives in ``hello`` locally -
compilation is deterministic, so coordinator and worker hold identical
unit lists and leases can name positions instead of shipping unit
objects.  Leased blocks execute through the ordinary
:func:`repro.scenarios.execute.run_units` path, so workers get fleet
aggregation, per-unit caching against the shared concurrent store, and
the exact evaluator byte behaviour of a serial run for free.  Results
stream back one message per unit *as each block completes*, letting the
coordinator detect stragglers at block granularity.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Callable, Mapping, Sequence

from repro.core.errors import ConfigurationError, ReproError
from repro.engine.base import EvalResult
from repro.scenarios.compiler import WorkUnit, compile_scenario, shard_units
from repro.service import protocol


def unit_metrics(result) -> dict[str, Any]:
    """The cacheable metrics payload of one executed unit result.

    Inverts :meth:`repro.scenarios.execute.UnitResult` back into the
    evaluator's JSON payload; every field round-trips exactly (floats
    through JSON, latency summaries through their rational encoding),
    so a payload that crossed the wire renders byte-identical lines.
    """
    return EvalResult(
        ebw=result.ebw,
        processor_utilization=result.processor_utilization,
        bus_utilization=result.bus_utilization,
        latency=result.latency,
        littles=result.littles,
    ).payload()


class WorkerSession:
    """Protocol state machine for one worker, independent of transport.

    ``send`` delivers one encoded-able message mapping to the
    coordinator; ``result_hook``, when given, runs after each result
    message has been sent (the crash-injection seam: the stdio server
    uses it to implement ``--exit-after``, tests use it to simulate a
    worker dying mid-lease).
    """

    def __init__(
        self,
        send: Callable[[Mapping[str, Any]], None],
        result_hook: Callable[[int], None] | None = None,
    ) -> None:
        self._send = send
        self._result_hook = result_hook
        self._units: Sequence[WorkUnit] | None = None
        self._cache = None
        self._results_sent = 0

    # ------------------------------------------------------------------
    def handle(self, message: Mapping[str, Any]) -> bool:
        """Process one decoded message; ``False`` ends the session."""
        kind = message.get("type")
        if kind == "hello":
            self._handle_hello(message)
            return True
        if kind == "lease":
            self._handle_lease(message)
            return True
        if kind == "shutdown":
            return False
        raise ConfigurationError(
            f"worker cannot handle protocol message type {kind!r}"
        )

    # ------------------------------------------------------------------
    def _handle_hello(self, message: Mapping[str, Any]) -> None:
        if message.get("protocol") != protocol.PROTOCOL_VERSION:
            raise ConfigurationError(
                f"protocol version mismatch: coordinator speaks "
                f"{message.get('protocol')!r}, worker speaks "
                f"{protocol.PROTOCOL_VERSION}"
            )
        spec = protocol.spec_from_wire(message["spec"])
        units: Sequence[WorkUnit] = compile_scenario(
            spec,
            kernel=message.get("kernel", "reference"),
            backend=message.get("backend", "numpy"),
        )
        shard = message.get("shard")
        if shard is not None:
            shard_index, shard_count = shard
            units = shard_units(units, shard_index, shard_count)
        self._units = units
        cache_config = message.get("cache") or {}
        if cache_config.get("enabled", False):
            from repro.parallel.cache import ResultCache

            try:
                self._cache = ResultCache(cache_dir=cache_config.get("dir"))
            except (ConfigurationError, OSError) as exc:
                # A broken cache location must never block the sweep;
                # the worker just computes everything.
                print(
                    f"[sweep-work {os.getpid()}] caching disabled: {exc}",
                    file=sys.stderr,
                )
        self._send(protocol.ready_message(len(units), os.getpid()))

    def _handle_lease(self, message: Mapping[str, Any]) -> None:
        if self._units is None:
            raise ConfigurationError("lease received before hello")
        from repro.scenarios.execute import run_units

        lease_id = message["lease_id"]
        positions = list(message["positions"])
        bad = [p for p in positions if not 0 <= p < len(self._units)]
        if not positions or bad:
            raise ConfigurationError(
                f"lease positions {bad or positions!r} outside compiled "
                f"unit list (0..{len(self._units)})"
            )
        block = [self._units[position] for position in positions]
        results = run_units(block, jobs=1, cache=self._cache)
        for position, result in zip(positions, results):
            self._send(
                protocol.result_message(
                    lease_id,
                    position,
                    result.unit.index,
                    unit_metrics(result),
                    result.cached,
                )
            )
            self._results_sent += 1
            if self._result_hook is not None:
                self._result_hook(self._results_sent)
        self._send(protocol.lease_done_message(lease_id))


def serve_stdio(
    stdin=None,
    stdout=None,
    exit_after: int | None = None,
) -> int:
    """Run one worker session over newline-delimited JSON on stdio.

    ``exit_after`` is the crash-injection hook behind ``sweep-work
    --exit-after N``: the process dies abruptly (``os._exit``, no
    cleanup, mid-lease) after streaming its N-th result, which is how
    the test suite and the CI smoke job prove coordinator retry without
    real crashes.  Returns the process exit code.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout

    def send(message: Mapping[str, Any]) -> None:
        stdout.write(protocol.encode_message(message) + "\n")
        stdout.flush()

    def crash_hook(results_sent: int) -> None:
        if exit_after is not None and results_sent >= exit_after:
            # Simulated kill: no flush-on-exit, no lease_done, no
            # shutdown handshake - exactly what SIGKILL would leave.
            os._exit(17)

    session = WorkerSession(send, result_hook=crash_hook)
    try:
        for line in stdin:
            if not line.strip():
                continue
            message = protocol.decode_message(line)
            if not session.handle(message):
                return 0
    except ReproError as exc:
        send(protocol.error_message(str(exc)))
        print(f"[sweep-work {os.getpid()}] error: {exc}", file=sys.stderr)
        return 2
    # EOF without shutdown: the coordinator went away; exit quietly.
    return 0
