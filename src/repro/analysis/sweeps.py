"""Parameter-sweep helpers shared by experiments, examples and benches.

Every figure of the paper is a sweep over one axis (``r`` or ``p``) with
the other parameters fixed; these helpers centralise the loop so all
callers simulate with identical settings and seeds.  Each sweep is
expressed as a one-axis :class:`~repro.scenarios.spec.ScenarioSpec` and
lowered through the scenario compiler
(:mod:`repro.scenarios.compiler`), which dispatches the grid points
through :mod:`repro.parallel` - pass ``max_workers`` to fan a sweep out
over a process pool; the points are independent seeded runs, so the
resulting curve is identical to the serial one.  ``max_workers``
follows the pool convention: the default ``1`` runs serially, an
explicit ``None`` uses the CPU count.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One simulated point of a sweep."""

    config: SystemConfig
    ebw: float
    processor_utilization: float
    bus_utilization: float


@dataclasses.dataclass(frozen=True)
class Sweep:
    """A labelled series of sweep points (one curve of a figure)."""

    label: str
    axis: str
    points: tuple[SweepPoint, ...]

    def axis_values(self) -> tuple[float, ...]:
        """The x-coordinates of the curve."""
        return tuple(_axis_value(point.config, self.axis) for point in self.points)

    def ebw_values(self) -> tuple[float, ...]:
        """The EBW y-coordinates of the curve."""
        return tuple(point.ebw for point in self.points)

    def processor_utilization_values(self) -> tuple[float, ...]:
        """The ``EBW/(n p)`` y-coordinates (Figures 3 and 6)."""
        return tuple(point.processor_utilization for point in self.points)


def _axis_value(config: SystemConfig, axis: str) -> float:
    if axis == "r":
        return float(config.memory_cycle_ratio)
    if axis == "p":
        return config.request_probability
    if axis == "m":
        return float(config.memories)
    raise ConfigurationError(f"unknown sweep axis {axis!r}")


_AXIS_FIELDS = {
    "r": "memory_cycle_ratio",
    "p": "request_probability",
    "m": "memories",
}


def _run_sweep(
    base: SystemConfig,
    field: str,
    values: Sequence,
    label: str,
    axis: str,
    cycles: int,
    seed: int,
    max_workers: int | None,
) -> Sweep:
    """Compile the one-axis scenario for this sweep and execute it."""
    from repro.scenarios.compiler import compile_scenario
    from repro.scenarios.execute import run_units
    from repro.scenarios.spec import GridAxis, ReplicationPlan, ScenarioSpec

    spec = ScenarioSpec(
        name=f"sweep-{axis}",
        base=dataclasses.asdict(base),
        grid=(GridAxis(field, tuple(values)),),
        cycles=cycles,
        plan=ReplicationPlan(1, seed),
        description=f"one-axis {axis} sweep ({label})",
    )
    results = run_units(compile_scenario(spec), jobs=max_workers)
    points = tuple(
        SweepPoint(
            config=result.unit.config,
            ebw=result.ebw,
            processor_utilization=result.processor_utilization,
            bus_utilization=result.bus_utilization,
        )
        for result in results
    )
    return Sweep(label=label, axis=axis, points=points)


def sweep_r(
    base: SystemConfig,
    r_values: Iterable[int],
    label: str,
    cycles: int = 50_000,
    seed: int = 0,
    max_workers: int | None = 1,
) -> Sweep:
    """Simulate ``base`` for each memory-cycle ratio in ``r_values``."""
    return _run_sweep(
        base, _AXIS_FIELDS["r"], tuple(r_values), label, "r", cycles, seed,
        max_workers,
    )


def sweep_p(
    base: SystemConfig,
    p_values: Iterable[float],
    label: str,
    cycles: int = 50_000,
    seed: int = 0,
    max_workers: int | None = 1,
) -> Sweep:
    """Simulate ``base`` for each request probability in ``p_values``."""
    return _run_sweep(
        base, _AXIS_FIELDS["p"], tuple(p_values), label, "p", cycles, seed,
        max_workers,
    )


def sweep_m(
    base: SystemConfig,
    m_values: Iterable[int],
    label: str,
    cycles: int = 50_000,
    seed: int = 0,
    max_workers: int | None = 1,
) -> Sweep:
    """Simulate ``base`` for each module count in ``m_values``."""
    return _run_sweep(
        base, _AXIS_FIELDS["m"], tuple(m_values), label, "m", cycles, seed,
        max_workers,
    )


def crossbar_reference(
    processors: int, memories: Sequence[int]
) -> dict[int, float]:
    """Exact crossbar EBW for each module count (figure reference lines)."""
    from repro.models.crossbar import crossbar_exact_ebw

    result = {}
    for m in memories:
        config = SystemConfig(processors, m, 1)
        result[m] = crossbar_exact_ebw(config).ebw
    return result
