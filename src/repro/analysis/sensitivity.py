"""One-factor-at-a-time sensitivity of EBW around a design point.

Section 7 of the paper is a designer's argument: which knob (memory
count ``m``, speed ratio ``r``, buffers, load ``p``) buys the most
bandwidth?  This module quantifies the argument: for one base
configuration it perturbs each factor and reports absolute effects and
(for the continuous-ish factors) local elasticities

    ``elasticity = (dEBW / EBW) / (dx / x)``

so "doubling the memory banks" and "doubling the memory speed ratio"
become directly comparable.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.parallel.workers import SimulationCase, simulate_cases


@dataclasses.dataclass(frozen=True)
class FactorEffect:
    """Effect of perturbing one design factor."""

    factor: str
    base_value: float
    perturbed_value: float
    base_ebw: float
    perturbed_ebw: float

    @property
    def absolute_effect(self) -> float:
        """EBW change caused by the perturbation."""
        return self.perturbed_ebw - self.base_ebw

    @property
    def elasticity(self) -> float:
        """Relative EBW change per relative factor change."""
        factor_change = (self.perturbed_value - self.base_value) / self.base_value
        if factor_change == 0.0:
            raise ConfigurationError(f"factor {self.factor} was not perturbed")
        ebw_change = self.absolute_effect / self.base_ebw
        return ebw_change / factor_change


@dataclasses.dataclass(frozen=True)
class SensitivityReport:
    """All factor effects around one design point."""

    base: SystemConfig
    base_ebw: float
    effects: tuple[FactorEffect, ...]

    def effect(self, factor: str) -> FactorEffect:
        """The effect record for one factor name."""
        for record in self.effects:
            if record.factor == factor:
                return record
        raise ConfigurationError(f"unknown factor {factor!r}")

    def ranked(self) -> list[FactorEffect]:
        """Effects sorted by descending absolute EBW impact."""
        return sorted(
            self.effects, key=lambda e: abs(e.absolute_effect), reverse=True
        )

    def summary(self) -> str:
        """Readable multi-line report."""
        lines = [
            f"base: {self.base.describe()}  EBW {self.base_ebw:.3f}",
            f"{'factor':<18}{'base':>8}{'new':>8}{'EBW':>9}{'effect':>9}",
        ]
        for record in self.ranked():
            lines.append(
                f"{record.factor:<18}{record.base_value:>8g}"
                f"{record.perturbed_value:>8g}{record.perturbed_ebw:>9.3f}"
                f"{record.absolute_effect:>+9.3f}"
            )
        return "\n".join(lines)


def sensitivity_analysis(
    base: SystemConfig,
    memory_step: int = 2,
    ratio_step: int = 2,
    load_step: float = -0.2,
    cycles: int = 30_000,
    seed: int = 0,
    max_workers: int | None = 1,
) -> SensitivityReport:
    """Perturb each design factor of ``base`` once and measure EBW.

    Factors: ``memories`` (+memory_step), ``memory_cycle_ratio``
    (+ratio_step), ``request_probability`` (+load_step, clipped to
    (0, 1]), and ``buffering`` (toggled).  The base point and every
    perturbation are independent seeded runs, so with ``max_workers``
    (``1`` = serial, ``None`` = CPU count) they are dispatched through
    one process-pool batch; the report is identical to the serial one.
    """
    if memory_step == 0 or ratio_step == 0 or load_step == 0.0:
        raise ConfigurationError("perturbation steps must be non-zero")

    # (factor name, base value, perturbed value, perturbed config)
    perturbations: list[tuple[str, float, float, SystemConfig]] = []

    more_memories = dataclasses.replace(
        base, memories=max(1, base.memories + memory_step)
    )
    perturbations.append(
        ("memories", base.memories, more_memories.memories, more_memories)
    )

    slower_memory = dataclasses.replace(
        base, memory_cycle_ratio=max(1, base.memory_cycle_ratio + ratio_step)
    )
    perturbations.append(
        (
            "memory_cycle_ratio",
            base.memory_cycle_ratio,
            slower_memory.memory_cycle_ratio,
            slower_memory,
        )
    )

    new_p = min(1.0, max(0.05, base.request_probability + load_step))
    if new_p != base.request_probability:
        lighter = dataclasses.replace(base, request_probability=new_p)
        perturbations.append(
            ("request_probability", base.request_probability, new_p, lighter)
        )

    toggled = (
        base.without_buffers() if base.buffered else base.with_buffers()
    )
    perturbations.append(
        ("buffering", float(base.buffered), float(toggled.buffered), toggled)
    )

    cases = [SimulationCase(base, cycles, seed)] + [
        SimulationCase(config, cycles, seed)
        for _, _, _, config in perturbations
    ]
    results = simulate_cases(cases, max_workers=max_workers)
    base_ebw = results[0].ebw
    effects = tuple(
        FactorEffect(
            factor=factor,
            base_value=base_value,
            perturbed_value=perturbed_value,
            base_ebw=base_ebw,
            perturbed_ebw=result.ebw,
        )
        for (factor, base_value, perturbed_value, _), result in zip(
            perturbations, results[1:]
        )
    )

    return SensitivityReport(
        base=base, base_ebw=base_ebw, effects=effects
    )
