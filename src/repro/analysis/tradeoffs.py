"""Section 7 design-space studies.

The paper's conclusions state several concrete trade-offs:

* the 8x8 crossbar EBW is attained by the (unbuffered) single-bus system
  with ``m = 14`` and ``r = 8``, and only 5% is lost with ``m = 10``;
* a buffered single-bus system with ``r = 18`` performs like a 16x16
  crossbar;
* with ``p >= 0.4``, ``r = 8`` suffices to exceed the crossbar in an
  8x16 system; with ``p = 0.3``, ``r = 12`` does;
* the buffered system operates in saturation until ``r`` approaches
  ``min(n, m)``, and beats the crossbar while ``r <~ min(n, m) + 2``.

The helpers here evaluate such claims mechanically so the example
scripts and benchmarks can regenerate them.
"""

from __future__ import annotations

import dataclasses

from repro.bus import simulate
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError
from repro.core.policy import Priority


@dataclasses.dataclass(frozen=True)
class EquivalenceSearchResult:
    """Outcome of a search for a crossbar-equivalent single-bus design."""

    target_ebw: float
    config: SystemConfig | None
    achieved_ebw: float | None

    @property
    def found(self) -> bool:
        """Whether some scanned configuration reached the target."""
        return self.config is not None


def crossbar_target(processors: int, memories: int) -> float:
    """The exact EBW of a ``processors x memories`` crossbar."""
    from repro.engine import EvaluationMethod, evaluate_config

    return evaluate_config(
        SystemConfig(processors, memories, 1), EvaluationMethod.CROSSBAR
    ).ebw


def find_crossbar_equivalent(
    processors: int,
    crossbar_size: int,
    memory_options: list[int],
    memory_cycle_ratio: int,
    buffered: bool = False,
    tolerance: float = 0.0,
    cycles: int = 50_000,
    seed: int = 0,
) -> EquivalenceSearchResult:
    """Find the smallest ``m`` whose single-bus EBW reaches the crossbar's.

    Scans ``memory_options`` in increasing order and returns the first
    configuration whose simulated EBW is at least
    ``(1 - tolerance) * crossbar EBW``.
    """
    if not memory_options:
        raise ConfigurationError("memory_options must not be empty")
    target = crossbar_target(crossbar_size, crossbar_size)
    for m in sorted(memory_options):
        config = SystemConfig(
            processors,
            m,
            memory_cycle_ratio,
            priority=Priority.PROCESSORS,
            buffered=buffered,
        )
        result = simulate(config, cycles=cycles, seed=seed)
        if result.ebw >= (1.0 - tolerance) * target:
            return EquivalenceSearchResult(
                target_ebw=target, config=config, achieved_ebw=result.ebw
            )
    return EquivalenceSearchResult(target_ebw=target, config=None, achieved_ebw=None)


def minimum_r_beating_crossbar(
    processors: int,
    memories: int,
    request_probability: float,
    r_options: list[int],
    buffered: bool = False,
    cycles: int = 50_000,
    seed: int = 0,
) -> int | None:
    """Smallest ``r`` whose single-bus EBW exceeds the equivalent crossbar.

    The crossbar reference has the same ``n``, ``m`` - the Section 7
    "exceed the crossbar performance" comparisons.  For ``p < 1`` the
    crossbar EBW is estimated by simulating a degenerate single-bus
    system?  No: the paper compares against the analytical crossbar with
    ``p = 1`` load scaled by ``n p``; we use the exact ``p = 1`` crossbar
    value scaled by the simulated crossbar utilisation would be circular,
    so the comparison for ``p < 1`` uses the crossbar EBW multiplied by
    ``p`` as the paper's normalised-load convention implies.
    """
    if not r_options:
        raise ConfigurationError("r_options must not be empty")
    target = crossbar_target(processors, memories) * request_probability
    for r in sorted(r_options):
        config = SystemConfig(
            processors,
            memories,
            r,
            request_probability=request_probability,
            priority=Priority.PROCESSORS,
            buffered=buffered,
        )
        result = simulate(config, cycles=cycles, seed=seed)
        if result.ebw >= target:
            return r
    return None


def saturation_limit(
    processors: int,
    memories: int,
    r_options: list[int],
    saturation_fraction: float = 0.98,
    cycles: int = 50_000,
    seed: int = 0,
) -> int | None:
    """Largest ``r`` at which the buffered system still saturates the bus.

    "Saturation" means EBW at least ``saturation_fraction`` of the
    ceiling ``(r+2)/2``.  The paper states this holds until ``r``
    approaches ``min(n, m)``.  Returns ``None`` if no scanned ``r``
    saturates.
    """
    if not 0.0 < saturation_fraction <= 1.0:
        raise ConfigurationError(
            f"saturation_fraction must lie in (0, 1], got {saturation_fraction}"
        )
    best = None
    for r in sorted(r_options):
        config = SystemConfig(
            processors,
            memories,
            r,
            priority=Priority.PROCESSORS,
            buffered=True,
        )
        result = simulate(config, cycles=cycles, seed=seed)
        if result.ebw >= saturation_fraction * config.max_ebw:
            best = r
    return best
