"""Warm-up (initial transient) analysis for the bus simulator.

The experiments discard a warm-up prefix before measuring (25% of the
window by default).  This module justifies and tunes that choice with
the standard tools:

* :func:`ebw_time_series` - per-interval EBW observations of one run;
* :func:`welch_moving_average` - Welch's smoothing of (averaged)
  replications, the classic visual/numeric warm-up diagnostic;
* :func:`suggest_warmup` - the first interval where the smoothed series
  stays within a tolerance band of its tail mean, i.e. where the
  transient has died out.
"""

from __future__ import annotations

from typing import Sequence

from repro.bus.system import MultiplexedBusSystem
from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError


def ebw_time_series(
    config: SystemConfig,
    intervals: int,
    interval_cycles: int,
    seed: int = 0,
) -> list[float]:
    """Per-interval EBW observations from one simulation run.

    The run starts from the cold initial state (all processors issuing
    simultaneously), so the early intervals carry the transient.
    """
    if intervals < 1:
        raise ConfigurationError(f"intervals must be >= 1, got {intervals}")
    if interval_cycles < 1:
        raise ConfigurationError(
            f"interval_cycles must be >= 1, got {interval_cycles}"
        )
    system = MultiplexedBusSystem(config, seed=seed)
    series = []
    previous = 0
    for _ in range(intervals):
        for _ in range(interval_cycles):
            system.step()
        completions = system.completions - previous
        previous = system.completions
        series.append(completions * config.processor_cycle / interval_cycles)
    return series


def averaged_replications(
    config: SystemConfig,
    replications: int,
    intervals: int,
    interval_cycles: int,
    base_seed: int = 0,
) -> list[float]:
    """Across-replication mean of the per-interval EBW series.

    Averaging across independent replications before smoothing is the
    first step of Welch's procedure: it removes within-run noise while
    preserving the common transient.
    """
    if replications < 1:
        raise ConfigurationError(
            f"replications must be >= 1, got {replications}"
        )
    accumulator = [0.0] * intervals
    for replication in range(replications):
        series = ebw_time_series(
            config, intervals, interval_cycles, seed=base_seed + replication
        )
        for i, value in enumerate(series):
            accumulator[i] += value
    return [total / replications for total in accumulator]


def welch_moving_average(series: Sequence[float], window: int) -> list[float]:
    """Welch's centred moving average with shrinking edge windows.

    For index ``i`` the window half width is ``min(window, i)`` (and is
    clipped at the right edge), matching Welch (1983).
    """
    if window < 0:
        raise ConfigurationError(f"window must be >= 0, got {window}")
    if not series:
        raise ConfigurationError("series must be non-empty")
    n = len(series)
    smoothed = []
    for i in range(n):
        half = min(window, i, n - 1 - i)
        segment = series[i - half : i + half + 1]
        smoothed.append(sum(segment) / len(segment))
    return smoothed


def suggest_warmup(
    series: Sequence[float],
    window: int = 3,
    tolerance: float = 0.02,
    tail_fraction: float = 0.5,
) -> int:
    """First interval index where the smoothed series has converged.

    Convergence means every subsequent smoothed value stays within
    ``tolerance`` (relative) of the mean over the trailing
    ``tail_fraction`` of the series.  Returns the series length when the
    series never settles - the caller should then simulate longer.
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ConfigurationError(
            f"tail_fraction must lie in (0, 1], got {tail_fraction}"
        )
    if tolerance <= 0.0:
        raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
    smoothed = welch_moving_average(series, window)
    tail_start = int(len(smoothed) * (1.0 - tail_fraction))
    tail = smoothed[tail_start:] or smoothed
    steady = sum(tail) / len(tail)
    if steady == 0.0:
        return len(series)
    for start in range(len(smoothed)):
        if all(
            abs(value - steady) <= tolerance * abs(steady)
            for value in smoothed[start:]
        ):
            return start
    return len(series)
