"""Design-space analysis: sweeps, trade-off searches, warm-up analysis."""

from repro.analysis.sweeps import (
    Sweep,
    SweepPoint,
    crossbar_reference,
    sweep_m,
    sweep_p,
    sweep_r,
)
from repro.analysis.sensitivity import (
    FactorEffect,
    SensitivityReport,
    sensitivity_analysis,
)
from repro.analysis.transient import (
    averaged_replications,
    ebw_time_series,
    suggest_warmup,
    welch_moving_average,
)
from repro.analysis.tradeoffs import (
    EquivalenceSearchResult,
    crossbar_target,
    find_crossbar_equivalent,
    minimum_r_beating_crossbar,
    saturation_limit,
)

__all__ = [
    "Sweep",
    "SweepPoint",
    "sweep_r",
    "sweep_p",
    "sweep_m",
    "crossbar_reference",
    "EquivalenceSearchResult",
    "crossbar_target",
    "find_crossbar_equivalent",
    "minimum_r_beating_crossbar",
    "saturation_limit",
    "ebw_time_series",
    "averaged_replications",
    "welch_moving_average",
    "suggest_warmup",
    "FactorEffect",
    "SensitivityReport",
    "sensitivity_analysis",
]
