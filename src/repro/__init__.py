"""repro - reproduction of "Analysis and Simulation of Multiplexed
Single-Bus Networks With and Without Buffering" (ISCA 1985).

Public API tour
---------------
* :class:`SystemConfig` describes a system (n, m, r, p, priority,
  buffering);
* :func:`simulate` runs the cycle-accurate machine simulator;
* :mod:`repro.engine` is the unified evaluation layer: every method
  (simulation, markov, mva, crossbar, bandwidth, bounds, approx) behind
  one evaluator registry with capability declarations - see
  ``ARCHITECTURE.md``;
* :mod:`repro.models` evaluates the paper's analytical models;
* :mod:`repro.queueing` solves the Section 6 product-form comparison;
* :mod:`repro.experiments` regenerates every table and figure
  (``repro-experiments all`` or ``python -m repro.experiments all``);
* :mod:`repro.parallel` fans replications, sweeps and experiments out
  over process pools and caches their results, without changing a
  single output byte (``repro-experiments all --jobs 8``);
* :mod:`repro.scenarios` declares whole design-space sweeps as
  validated specs, compiles them to shardable work-unit lists, and runs
  them - see ``SCENARIOS.md`` (``repro-experiments scenario``);
* :mod:`repro.workloads` provides the request-target generators and the
  declarative workload specs (uniform, hot-spot, trace, heterogeneous
  per-processor p) the scenario layer composes.

Quick start::

    from repro import SystemConfig, Priority, simulate
    config = SystemConfig(processors=8, memories=16, memory_cycle_ratio=8,
                          priority=Priority.PROCESSORS)
    print(simulate(config, cycles=100_000, seed=1).summary())
"""

from repro.bus import MultiplexedBusSystem, simulate
from repro.core import (
    ConfigurationError,
    ExperimentError,
    ModelError,
    ModelResult,
    Priority,
    ReproError,
    SimulationError,
    SimulationResult,
    SystemConfig,
    TieBreak,
)

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "Priority",
    "TieBreak",
    "simulate",
    "MultiplexedBusSystem",
    "ModelResult",
    "SimulationResult",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ModelError",
    "ExperimentError",
    "__version__",
]
