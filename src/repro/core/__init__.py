"""Core types shared across the repro library.

This subpackage holds the configuration object, policy enums, metric
conversions and result containers.  It has no dependency on the
simulators or the analytical models, which all depend on it.
"""

from repro.core.config import SystemConfig
from repro.core.errors import (
    ConfigurationError,
    ExperimentError,
    ModelError,
    ReproError,
    SimulationError,
)
from repro.core.policy import Priority, TieBreak
from repro.core.results import ModelResult, SimulationResult

__all__ = [
    "SystemConfig",
    "Priority",
    "TieBreak",
    "ModelResult",
    "SimulationResult",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ModelError",
    "ExperimentError",
]
