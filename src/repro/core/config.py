"""System configuration for the multiplexed single-bus multiprocessor.

:class:`SystemConfig` captures hypotheses (a)-(h) of Section 2 of the paper
plus the Section 6 buffering extension in one immutable, validated object.
All simulators and analytical models consume this type, so a configuration
built once can be handed to every evaluation method for cross-validation.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.errors import ConfigurationError
from repro.core.policy import Priority, TieBreak


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """A complete description of one system instance.

    Parameters
    ----------
    processors:
        Number of processors ``n`` (hypothesis (a)).
    memories:
        Number of memory modules ``m`` (hypothesis (a)).
    memory_cycle_ratio:
        The integer ``r``: memory cycle time expressed in bus cycles
        (hypothesis (c)).  The processor cycle is then ``r + 2`` bus
        cycles (hypothesis (d)).
    request_probability:
        The probability ``p`` that a processor issues a new request at the
        start of the processor cycle following a completed service
        (hypothesis (f)).  ``p = 1`` means no internal processing.
    priority:
        Bus-granting policy on processor/memory conflicts (hypothesis (g)).
    buffered:
        If true, every memory module has a one-deep input buffer and a
        one-deep output buffer (Section 6).  The Section 6 experiments all
        use :attr:`Priority.PROCESSORS`, but the simulator supports any
        combination.
    buffer_depth:
        Depth of each input/output buffer when ``buffered`` is true.  The
        paper fixes this to 1; other depths are a library extension used
        by the ablation benchmarks.
    tie_break:
        Arbitration rule inside a priority class (hypothesis (h): random).
    """

    processors: int
    memories: int
    memory_cycle_ratio: int
    request_probability: float = 1.0
    priority: Priority = Priority.PROCESSORS
    buffered: bool = False
    buffer_depth: int = 1
    tie_break: TieBreak = TieBreak.RANDOM

    def __post_init__(self) -> None:
        if not isinstance(self.processors, int) or self.processors < 1:
            raise ConfigurationError(
                f"processors must be a positive integer, got {self.processors!r}"
            )
        if not isinstance(self.memories, int) or self.memories < 1:
            raise ConfigurationError(
                f"memories must be a positive integer, got {self.memories!r}"
            )
        if not isinstance(self.memory_cycle_ratio, int) or self.memory_cycle_ratio < 1:
            raise ConfigurationError(
                "memory_cycle_ratio (r) must be a positive integer, got "
                f"{self.memory_cycle_ratio!r}"
            )
        if not isinstance(self.request_probability, (int, float)) or isinstance(
            self.request_probability, bool
        ):
            raise ConfigurationError(
                "request_probability (p) must be a number, got "
                f"{self.request_probability!r}"
            )
        if math.isnan(self.request_probability) or not (
            0.0 < self.request_probability <= 1.0
        ):
            raise ConfigurationError(
                "request_probability (p) must satisfy 0 < p <= 1, got "
                f"{self.request_probability!r}"
            )
        if not isinstance(self.priority, Priority):
            raise ConfigurationError(
                f"priority must be a Priority enum member, got {self.priority!r}"
            )
        if not isinstance(self.tie_break, TieBreak):
            raise ConfigurationError(
                f"tie_break must be a TieBreak enum member, got {self.tie_break!r}"
            )
        if not isinstance(self.buffer_depth, int) or self.buffer_depth < 1:
            raise ConfigurationError(
                f"buffer_depth must be a positive integer, got {self.buffer_depth!r}"
            )
        if self.buffer_depth != 1 and not self.buffered:
            raise ConfigurationError(
                "buffer_depth is meaningful only when buffered=True"
            )

    # ------------------------------------------------------------------
    # Derived quantities used throughout the paper.
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Alias for :attr:`processors`, matching the paper's notation."""
        return self.processors

    @property
    def m(self) -> int:
        """Alias for :attr:`memories`, matching the paper's notation."""
        return self.memories

    @property
    def r(self) -> int:
        """Alias for :attr:`memory_cycle_ratio`, the paper's ``r``."""
        return self.memory_cycle_ratio

    @property
    def p(self) -> float:
        """Alias for :attr:`request_probability`, the paper's ``p``."""
        return self.request_probability

    @property
    def processor_cycle(self) -> int:
        """Processor cycle length in bus cycles: ``r + 2`` (hypothesis (d))."""
        return self.memory_cycle_ratio + 2

    @property
    def max_ebw(self) -> float:
        """Upper bound ``(r+2)/2`` on the effective bandwidth (Section 2)."""
        return self.processor_cycle / 2.0

    @property
    def offered_load(self) -> float:
        """The memory-subsystem load ``n * p`` discussed in Section 3."""
        return self.processors * self.request_probability

    # ------------------------------------------------------------------
    # Convenience constructors for the paper's canonical scenarios.
    # ------------------------------------------------------------------
    def with_buffers(self, depth: int = 1) -> "SystemConfig":
        """Return a copy of this configuration with buffered memories."""
        return dataclasses.replace(self, buffered=True, buffer_depth=depth)

    def without_buffers(self) -> "SystemConfig":
        """Return a copy of this configuration without memory buffers."""
        return dataclasses.replace(self, buffered=False, buffer_depth=1)

    def describe(self) -> str:
        """One-line human-readable summary, used by reports and examples."""
        buffering = (
            f"buffered(depth={self.buffer_depth})" if self.buffered else "unbuffered"
        )
        return (
            f"n={self.processors} m={self.memories} r={self.memory_cycle_ratio} "
            f"p={self.request_probability:g} priority={self.priority} {buffering}"
        )
