"""Arbitration and buffering policies of the multiplexed single-bus system.

The paper (Section 2, hypothesis (g)) considers two bus-granting policies:

* **g′ — priority to processors**: pending processor requests win the bus
  over pending memory responses;
* **g″ — priority to memories**: pending memory responses win the bus over
  pending processor requests.

Within a priority class, arbitration is random (hypothesis (h)).  The
library additionally offers a deterministic FCFS tie-break as an ablation;
the paper's results all use :attr:`TieBreak.RANDOM`.
"""

from __future__ import annotations

import enum


class Priority(enum.Enum):
    """Which request class wins the bus on a conflict (hypothesis (g))."""

    PROCESSORS = "processors"
    """Policy g′ of the paper: processor requests beat memory responses."""

    MEMORIES = "memories"
    """Policy g″ of the paper: memory responses beat processor requests."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TieBreak(enum.Enum):
    """How the arbiter picks among candidates of the same priority class."""

    RANDOM = "random"
    """Uniformly random choice (hypothesis (h) of the paper)."""

    FCFS = "fcfs"
    """Oldest candidate first (ablation; not used by the paper)."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
