"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid system or experiment configuration was supplied."""


class SimulationError(ReproError, RuntimeError):
    """The simulator reached an internally inconsistent state.

    This error indicates a bug in the simulator (an invariant was broken),
    never a user mistake; user mistakes raise :class:`ConfigurationError`.
    """


class ModelError(ReproError, RuntimeError):
    """An analytical model could not be evaluated.

    Raised, for instance, when a Markov chain has no reachable recurrent
    class from the chosen initial state or a linear solve fails.
    """


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness failure (unknown id, malformed spec, ...)."""
