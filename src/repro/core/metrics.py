"""Performance metrics of the multiplexed single-bus system.

The paper's single figure of merit is the *effective bandwidth*

    ``EBW = Pb * (r + 2) / 2``

the expected number of memory requests serviced per processor cycle, where
``Pb`` is the bus utilisation (Section 2).  Several related quantities can
be derived from EBW; this module collects those conversions so simulators,
analytical models and experiments all agree on definitions.
"""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.core.errors import ConfigurationError


def ebw_from_bus_utilization(bus_utilization: float, r: int) -> float:
    """Effective bandwidth from bus utilisation ``Pb`` (Section 2).

    Each serviced request occupies exactly two bus cycles (one request
    transfer, one response transfer), so completions per bus cycle equal
    ``Pb / 2`` and per processor cycle ``Pb * (r + 2) / 2``.
    """
    if not 0.0 <= bus_utilization <= 1.0:
        raise ConfigurationError(
            f"bus utilisation must lie in [0, 1], got {bus_utilization!r}"
        )
    return bus_utilization * (r + 2) / 2.0


def bus_utilization_from_ebw(ebw: float, r: int) -> float:
    """Inverse of :func:`ebw_from_bus_utilization`."""
    if ebw < 0.0:
        raise ConfigurationError(f"EBW must be non-negative, got {ebw!r}")
    return 2.0 * ebw / (r + 2)


def max_ebw(r: int) -> float:
    """The maximum attainable EBW, ``(r+2)/2`` (Section 2).

    This bound corresponds to the bus alternating request and response
    transfers with no idle cycles.  It compares with the value 1 reached
    when the bus is not multiplexed.
    """
    if r < 1:
        raise ConfigurationError(f"r must be a positive integer, got {r!r}")
    return (r + 2) / 2.0


def processor_utilization(ebw: float, config: SystemConfig) -> float:
    """The normalised processor efficiency ``EBW / (n * p)``.

    This is the quantity plotted in Figures 3 and 6 of the paper.  With no
    interference each processor completes ``p`` requests per processor
    cycle on average, so the system-wide ceiling is ``n * p`` services per
    processor cycle and the ratio lies in ``(0, 1]``.
    """
    if ebw < 0.0:
        raise ConfigurationError(f"EBW must be non-negative, got {ebw!r}")
    return ebw / config.offered_load


def memory_utilization(ebw: float, config: SystemConfig) -> float:
    """Mean fraction of time a memory module spends accessing.

    Every serviced request keeps one module busy for ``r`` of the
    ``r + 2`` bus cycles of a processor cycle; with EBW services per
    processor cycle spread over ``m`` modules the per-module utilisation
    is ``EBW * r / ((r + 2) * m)``... expressed per bus cycle:
    completions per bus cycle are ``EBW / (r+2)`` and each holds a module
    ``r`` cycles, giving ``EBW * r / ((r+2) * m)``.
    """
    if ebw < 0.0:
        raise ConfigurationError(f"EBW must be non-negative, got {ebw!r}")
    r = config.memory_cycle_ratio
    return ebw * r / ((r + 2) * config.memories)


def mean_wait_cycles(ebw: float, config: SystemConfig) -> float:
    """Mean request latency in bus cycles, via Little's law.

    With ``p = 1`` every processor always has one request in flight
    (issued, queued or in service), so the number-in-system is ``n`` and
    the throughput is ``EBW / (r + 2)`` requests per bus cycle; Little's
    law gives a mean response time of ``n * (r + 2) / EBW`` bus cycles.
    For ``p < 1`` the in-flight population is reduced by the thinking
    processors; this helper applies Little's law to the request-holding
    population ``n * p`` as an approximation consistent with the paper's
    offered-load normalisation.
    """
    if ebw <= 0.0:
        raise ConfigurationError(f"EBW must be positive, got {ebw!r}")
    return config.offered_load * config.processor_cycle / ebw


def crossbar_equivalent_speedup(ebw: float, crossbar_ebw: float) -> float:
    """Ratio of the single-bus EBW to a reference crossbar EBW.

    Values above 1 mean the multiplexed single bus outperforms the
    (non-multiplexed) crossbar with basic cycle ``(r+2)t`` - the central
    comparison of Figures 2 and 5.
    """
    if crossbar_ebw <= 0.0:
        raise ConfigurationError(
            f"crossbar EBW must be positive, got {crossbar_ebw!r}"
        )
    if ebw < 0.0:
        raise ConfigurationError(f"EBW must be non-negative, got {ebw!r}")
    return ebw / crossbar_ebw
