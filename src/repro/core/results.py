"""Result containers shared by the simulators and the analytical models.

Two kinds of evaluation exist in this library:

* :class:`SimulationResult` - produced by the cycle-accurate simulator
  (:mod:`repro.bus`) from seeded stochastic runs; carries raw counters and
  batch-means confidence intervals.
* :class:`ModelResult` - produced by the deterministic analytical models
  (:mod:`repro.models`, :mod:`repro.queueing`).

Both expose ``ebw`` and the derived metrics with identical definitions so
experiments can compare them directly.
"""

from __future__ import annotations

import dataclasses
import math
import statistics
from typing import TYPE_CHECKING, Mapping

from repro.core import metrics
from repro.core.config import SystemConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metrics import LatencyReport


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Measured outcome of one simulation run.

    All counters refer to the measurement window only; warm-up cycles are
    excluded.  Times are in bus cycles.
    """

    config: SystemConfig
    cycles: int
    """Measured bus cycles (excludes warm-up)."""
    completions: int
    """Number of responses delivered to processors in the window."""
    request_transfers: int
    """Bus cycles spent carrying processor->memory request transfers."""
    response_transfers: int
    """Bus cycles spent carrying memory->processor response transfers."""
    memory_busy_cycles: int
    """Sum over modules of cycles spent performing an access."""
    total_latency: int
    """Sum over completed requests of issue-to-response-received latency."""
    seed: int
    warmup_cycles: int
    batch_ebws: tuple[float, ...] = ()
    """Per-batch EBW estimates used for the confidence interval."""
    latency: "LatencyReport | None" = None
    """Streaming wait/service/total latency-distribution summaries
    (populated when the run collected latency metrics; see
    :mod:`repro.metrics`)."""

    # ------------------------------------------------------------------
    @property
    def bus_busy_cycles(self) -> int:
        """Total bus cycles carrying a transfer in the window."""
        return self.request_transfers + self.response_transfers

    @property
    def bus_utilization(self) -> float:
        """Fraction of measured cycles the bus carried a transfer (``Pb``)."""
        if self.cycles == 0:
            return 0.0
        return self.bus_busy_cycles / self.cycles

    @property
    def ebw(self) -> float:
        """Effective bandwidth: completions per processor cycle.

        Computed directly from the completion count, which is the paper's
        definition; ``ebw_from_bus_utilization`` gives the same number up
        to end effects (transfers straddling the window edges).
        """
        if self.cycles == 0:
            return 0.0
        return self.completions * self.config.processor_cycle / self.cycles

    @property
    def processor_utilization(self) -> float:
        """``EBW / (n p)`` - the Figure 3 / Figure 6 quantity."""
        return metrics.processor_utilization(self.ebw, self.config)

    @property
    def memory_utilization(self) -> float:
        """Mean fraction of time a module spends accessing."""
        if self.cycles == 0:
            return 0.0
        return self.memory_busy_cycles / (self.cycles * self.config.memories)

    @property
    def mean_latency(self) -> float:
        """Mean issue-to-completion latency of serviced requests (cycles)."""
        if self.completions == 0:
            return math.nan
        return self.total_latency / self.completions

    def ebw_confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI on EBW from the batch means.

        Returns ``(ebw, ebw)`` when fewer than two batches were recorded.
        """
        if len(self.batch_ebws) < 2:
            return (self.ebw, self.ebw)
        mean = statistics.fmean(self.batch_ebws)
        half = z * statistics.stdev(self.batch_ebws) / math.sqrt(len(self.batch_ebws))
        return (mean - half, mean + half)

    def summary(self) -> str:
        """Multi-line human-readable report used by the examples."""
        low, high = self.ebw_confidence_interval()
        lines = [
            f"system            : {self.config.describe()}",
            f"measured cycles   : {self.cycles} (warm-up {self.warmup_cycles})",
            f"EBW               : {self.ebw:.3f}  (95% CI [{low:.3f}, {high:.3f}],"
            f" max {self.config.max_ebw:.1f})",
            f"bus utilisation   : {self.bus_utilization:.3f}",
            f"processor util.   : {self.processor_utilization:.3f}",
            f"memory util.      : {self.memory_utilization:.3f}",
            f"mean latency      : {self.mean_latency:.1f} bus cycles",
            f"completions       : {self.completions}",
        ]
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class ModelResult:
    """Deterministic outcome of an analytical model evaluation."""

    config: SystemConfig
    ebw: float
    method: str
    """Identifier of the producing model (e.g. ``"exact-memory-priority"``)."""
    details: Mapping[str, float] = dataclasses.field(default_factory=dict)
    """Model-specific extras (state count, idle probability, ...)."""

    @property
    def bus_utilization(self) -> float:
        """Bus utilisation implied by the EBW (inverse of Section 2 formula)."""
        return metrics.bus_utilization_from_ebw(
            self.ebw, self.config.memory_cycle_ratio
        )

    @property
    def processor_utilization(self) -> float:
        """``EBW / (n p)`` - comparable with the simulator's value."""
        return metrics.processor_utilization(self.ebw, self.config)

    def summary(self) -> str:
        """One human-readable report line per quantity."""
        lines = [
            f"system          : {self.config.describe()}",
            f"model           : {self.method}",
            f"EBW             : {self.ebw:.3f} (max {self.config.max_ebw:.1f})",
            f"bus utilisation : {self.bus_utilization:.3f}",
        ]
        for key, value in self.details.items():
            lines.append(f"{key:<16}: {value:g}")
        return "\n".join(lines)
