"""Mergeable latency summaries with an exactly-associative merge.

A :class:`LatencySummary` is the value that travels: per work unit, per
replication, per shard.  Its merge operator must make the distributed
stories true - "sharded and parallel runs combine reproducibly" - which
in this library means *bit-for-bit*, not "close enough".  Floating-point
addition is not associative, so the summary keeps its aggregates as
exact numbers:

* ``count`` is an ``int``;
* ``total`` (the sum of observations) and the three quantile fields are
  :class:`fractions.Fraction` values.  Every ``float`` converts to a
  ``Fraction`` exactly, ``Fraction`` arithmetic is exact, and the
  count-weighted quantile merge

      ``q = (n_a * q_a + n_b * q_b) / (n_a + n_b)``

  therefore telescopes: merging in any order or grouping yields the
  same ``sum(n_i * q_i) / sum(n_i)`` - the merge is associative and
  commutative *as an exact identity*, property-tested in
  ``tests/properties/test_quantile_properties.py``.

The empty summary is the identity element, making ``merge`` a monoid;
``merge_summaries`` folds any number of summaries deterministically.

Count-weighting quantile *estimates* is of course a heuristic (the p99
of a union is not the weighted mean of the parts' p99s); it is the
standard mergeable-summary compromise, is exact when the parts are
identically distributed replications - this pipeline's use case - and
above all is reproducible.  ``count``, ``mean``, ``min`` and ``max``
merge exactly in the strict sense as well.
"""

from __future__ import annotations

import dataclasses
import math
from fractions import Fraction
from typing import Any, Iterable, Mapping, Sequence

from repro.core.errors import ConfigurationError

LATENCY_METRICS_VERSION = 1
"""Version of the latency-summary payload format.

Bumped whenever the payload schema or its semantics change; the token
:data:`LATENCY_METRICS_TOKEN` enters content-addressed cache keys, so a
bump can never collide with entries written by an older format (and the
presence of the token separates metric-bearing entries from the
pre-metrics ones, which carry no token at all).
"""

LATENCY_METRICS_TOKEN = f"latency@{LATENCY_METRICS_VERSION}"
"""The versioned cache-key token for latency metrics."""


def _fraction_json(value: Fraction | None) -> list[int] | None:
    if value is None:
        return None
    return [value.numerator, value.denominator]


def _fraction_from_json(value: Any, what: str) -> Fraction | None:
    if value is None:
        return None
    # Accept exactly the encoder's [numerator, denominator] shape; a
    # string like "12" would otherwise unpack char-by-char into a
    # plausible-but-wrong fraction instead of failing the entry.
    if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
        raise ConfigurationError(
            f"malformed {what} in latency payload: {value!r} "
            "(expected a [numerator, denominator] pair)"
        )
    try:
        numerator, denominator = value
        return Fraction(int(numerator), int(denominator))
    except (TypeError, ValueError, ZeroDivisionError) as exc:
        raise ConfigurationError(
            f"malformed {what} in latency payload: {value!r} ({exc})"
        ) from exc


@dataclasses.dataclass(frozen=True)
class LatencySummary:
    """count/mean/p50/p90/p99/max of one latency population.

    All non-count fields are exact :class:`~fractions.Fraction` values
    (``None`` when the summary is empty); the ``*_value`` properties
    render them as floats for display.
    """

    count: int = 0
    total: Fraction = Fraction(0)
    minimum: Fraction | None = None
    maximum: Fraction | None = None
    p50: Fraction | None = None
    p90: Fraction | None = None
    p99: Fraction | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.count, int) or self.count < 0:
            raise ConfigurationError(
                f"count must be a non-negative integer, got {self.count!r}"
            )
        quantile_fields = (self.minimum, self.maximum, self.p50, self.p90, self.p99)
        if self.count == 0:
            if any(field is not None for field in quantile_fields) or self.total:
                raise ConfigurationError(
                    "an empty latency summary must have no statistics"
                )
        elif any(field is None for field in quantile_fields):
            raise ConfigurationError(
                "a non-empty latency summary must carry min/max/p50/p90/p99"
            )

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Mean latency (``nan`` when empty)."""
        if self.count == 0:
            return math.nan
        return float(self.total / self.count)

    def _float(self, value: Fraction | None) -> float:
        return math.nan if value is None else float(value)

    @property
    def min_value(self) -> float:
        return self._float(self.minimum)

    @property
    def max_value(self) -> float:
        return self._float(self.maximum)

    @property
    def p50_value(self) -> float:
        return self._float(self.p50)

    @property
    def p90_value(self) -> float:
        return self._float(self.p90)

    @property
    def p99_value(self) -> float:
        return self._float(self.p99)

    # ------------------------------------------------------------------
    def merge(self, other: "LatencySummary") -> "LatencySummary":
        """Combine two summaries; exact, associative and commutative.

        The empty summary is the identity.  Counts, totals and extrema
        combine exactly; quantile estimates combine by exact
        count-weighted mean (see module docstring for why that is the
        right reproducibility/accuracy trade).
        """
        if not isinstance(other, LatencySummary):
            raise ConfigurationError(
                f"can only merge LatencySummary values, got {other!r}"
            )
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        count = self.count + other.count

        def weighted(a: Fraction | None, b: Fraction | None) -> Fraction:
            assert a is not None and b is not None
            return (self.count * a + other.count * b) / count

        assert self.minimum is not None and other.minimum is not None
        assert self.maximum is not None and other.maximum is not None
        return LatencySummary(
            count=count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            p50=weighted(self.p50, other.p50),
            p90=weighted(self.p90, other.p90),
            p99=weighted(self.p99, other.p99),
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Iterable[float]) -> "LatencySummary":
        """Exact summary of a small in-memory sample (tests, references)."""
        from repro.metrics.quantiles import exact_quantile

        ordered = sorted(Fraction(v) for v in values)
        if not ordered:
            return cls()
        floats = [float(v) for v in ordered]
        return cls(
            count=len(ordered),
            total=sum(ordered, Fraction(0)),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=Fraction(exact_quantile(floats, 0.5)),
            p90=Fraction(exact_quantile(floats, 0.9)),
            p99=Fraction(exact_quantile(floats, 0.99)),
        )

    # ------------------------------------------------------------------
    def payload(self) -> dict[str, Any]:
        """Canonical JSON-able encoding; round-trips exactly.

        Fractions encode as ``[numerator, denominator]`` integer pairs,
        so the cache never loses precision and cached runs re-render
        byte-identically.
        """
        return {
            "count": self.count,
            "total": _fraction_json(self.total),
            "min": _fraction_json(self.minimum),
            "max": _fraction_json(self.maximum),
            "p50": _fraction_json(self.p50),
            "p90": _fraction_json(self.p90),
            "p99": _fraction_json(self.p99),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "LatencySummary":
        """Invert :meth:`payload`; raises ``ConfigurationError`` on damage."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"latency summary payload must be a mapping, got {payload!r}"
            )
        try:
            count = payload["count"]
        except KeyError:
            raise ConfigurationError(
                "latency summary payload lacks a 'count'"
            ) from None
        if not isinstance(count, int) or count < 0:
            raise ConfigurationError(
                f"latency summary count must be a non-negative int, got {count!r}"
            )
        total = _fraction_from_json(payload.get("total"), "total")
        if total is None and count > 0:
            # The encoder always writes 'total'; a non-empty summary
            # without one is a damaged entry, and defaulting it to zero
            # would serve wrong means from cache instead of recomputing.
            raise ConfigurationError(
                "latency summary payload lacks a 'total' for a "
                f"non-empty summary (count={count})"
            )
        return cls(
            count=count,
            total=total if total is not None else Fraction(0),
            minimum=_fraction_from_json(payload.get("min"), "min"),
            maximum=_fraction_from_json(payload.get("max"), "max"),
            p50=_fraction_from_json(payload.get("p50"), "p50"),
            p90=_fraction_from_json(payload.get("p90"), "p90"),
            p99=_fraction_from_json(payload.get("p99"), "p99"),
        )


def merge_summaries(summaries: Iterable[LatencySummary]) -> LatencySummary:
    """Fold :meth:`LatencySummary.merge` over ``summaries``.

    Associativity and commutativity of the merge make the result
    independent of iteration order *exactly*, but callers should still
    pass a canonical order (e.g. seed order) for clarity.
    """
    merged = LatencySummary()
    for summary in summaries:
        merged = merged.merge(summary)
    return merged


@dataclasses.dataclass(frozen=True)
class LatencyReport:
    """The three per-request latency populations of one run.

    * ``wait`` - issue to access start, excluding the request bus
      transfer itself: arbitration plus input-buffer queueing delay;
    * ``service`` - cycles the access stage worked on the request;
    * ``total`` - issue to response received (the paper's latency), so
      ``total = wait + service + output/response delay + 2`` transfer
      cycles.
    """

    wait: LatencySummary = LatencySummary()
    service: LatencySummary = LatencySummary()
    total: LatencySummary = LatencySummary()

    def merge(self, other: "LatencyReport") -> "LatencyReport":
        """Component-wise merge; inherits exact associativity."""
        return LatencyReport(
            wait=self.wait.merge(other.wait),
            service=self.service.merge(other.service),
            total=self.total.merge(other.total),
        )

    def payload(self) -> dict[str, Any]:
        """Canonical JSON-able encoding of all three summaries."""
        return {
            "version": LATENCY_METRICS_VERSION,
            "wait": self.wait.payload(),
            "service": self.service.payload(),
            "total": self.total.payload(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "LatencyReport":
        """Invert :meth:`payload`; rejects unknown versions."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"latency report payload must be a mapping, got {payload!r}"
            )
        version = payload.get("version")
        if version != LATENCY_METRICS_VERSION:
            raise ConfigurationError(
                f"unsupported latency payload version {version!r} "
                f"(this build reads version {LATENCY_METRICS_VERSION})"
            )
        return cls(
            wait=LatencySummary.from_payload(payload.get("wait", {})),
            service=LatencySummary.from_payload(payload.get("service", {})),
            total=LatencySummary.from_payload(payload.get("total", {})),
        )


def merge_latency_reports(reports: Iterable[LatencyReport]) -> LatencyReport:
    """Fold :meth:`LatencyReport.merge` over ``reports``.

    Named distinctly from :func:`repro.scenarios.execute.merge_reports`
    (which merges shard *stdout* reports) - the two routinely appear in
    the same sharded-latency workflow and must not be confusable.
    """
    merged = LatencyReport()
    for report in reports:
        merged = merged.merge(report)
    return merged
