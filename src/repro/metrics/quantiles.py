"""Streaming quantile estimation: P-squared with an exact fallback.

The latency pipeline must summarise millions of per-request latencies
without storing them, so the workhorse here is the P² ("P-squared")
algorithm of Jain & Chlamtac (CACM 1985): five markers per tracked
quantile, updated in O(1) time and O(1) memory per observation, with
piecewise-parabolic height adjustment.

Two refinements make the estimator fit this library's determinism and
accuracy contracts:

* **Exact small-sample fallback.**  The first ``exact_limit``
  observations are kept verbatim; while the stream is that short,
  :meth:`P2Quantile.estimate` returns the *exact* empirical quantile
  (method="inclusive" linear interpolation, identical to
  ``statistics.quantiles(values, n=100, method="inclusive")``).  Only
  when the stream outgrows the buffer do the P² markers take over,
  seeded from the order statistics of the buffered prefix - a strictly
  better initialisation than the classic first-five rule.
* **Documented error bound.**  Beyond the exact range the estimate is
  approximate; the property suite
  (``tests/properties/test_quantile_properties.py``) enforces the bound
  this module promises: for streams up to 10^4 observations drawn from
  uniform, exponential and bimodal distributions, the empirical rank of
  the estimate stays within ``0.12 + 10/n`` of the target quantile
  ``q`` (and the estimate always lies inside ``[min, max]`` of the
  data).  In practice the rank error is far smaller (~0.01-0.03); the
  bound is deliberately loose enough to be a stable contract.

Everything here is deterministic: the same observation sequence always
produces the same estimate, so cached, sharded and parallel runs agree
bit-for-bit.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.core.errors import ConfigurationError

DEFAULT_EXACT_LIMIT = 64
"""Observations kept verbatim before the P² markers take over."""


def exact_quantile(ordered: Sequence[float], q: float) -> float:
    """Exact empirical quantile of a *sorted* sample.

    Uses "inclusive" linear interpolation (hydrologist's method, R
    type 7) with the same integer ``divmod`` formulation - and the same
    floating-point operation order - as the standard library, so for
    ``q = i/100`` the result is bit-identical to
    ``statistics.quantiles(values, n=100, method="inclusive")[i-1]``.
    """
    if not ordered:
        raise ConfigurationError("cannot take a quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must lie in [0, 1], got {q}")
    # Recover the intended rational rank (0.9 the float is not 9/10) so
    # the arithmetic below is exact integer arithmetic.  Percent-aligned
    # quantiles keep denominator 100 *unreduced*: statistics.quantiles
    # divides by its group count n=100, and matching its operand order
    # and denominators exactly is what makes the results bit-identical.
    percent = round(q * 100)
    if abs(q * 100 - percent) < 1e-9:
        numerator, denominator = percent, 100
    else:
        rational = Fraction(q).limit_denominator(10_000)
        numerator, denominator = rational.numerator, rational.denominator
    low, remainder = divmod(numerator * (len(ordered) - 1), denominator)
    if low >= len(ordered) - 1:
        return float(ordered[-1])
    return (
        float(ordered[low]) * (denominator - remainder)
        + float(ordered[low + 1]) * remainder
    ) / denominator


class P2Quantile:
    """One streaming quantile: exact up to ``exact_limit``, P² beyond.

    Parameters
    ----------
    q:
        Target quantile in ``(0, 1)``.
    exact_limit:
        Size of the verbatim prefix buffer (``>= 5``).  While ``count``
        is at most this, :meth:`estimate` is exact; the first
        observation beyond seeds the five P² markers from the buffered
        order statistics and frees the buffer.
    """

    __slots__ = ("q", "exact_limit", "count", "_buffer", "_heights",
                 "_positions", "_desired", "_increments")

    def __init__(self, q: float, exact_limit: int = DEFAULT_EXACT_LIMIT) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"quantile must lie in (0, 1), got {q}")
        if exact_limit < 5:
            raise ConfigurationError(
                f"exact_limit must be >= 5, got {exact_limit}"
            )
        self.q = q
        self.exact_limit = exact_limit
        self.count = 0
        self._buffer: list[float] | None = []
        # P² state (populated on the transition out of exact mode).
        self._heights: list[float] = []
        self._positions: list[int] = []
        self._desired: list[float] = []
        self._increments = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Consume one observation."""
        value = float(value)
        self.count += 1
        if self._buffer is not None:
            if len(self._buffer) < self.exact_limit:
                self._buffer.append(value)
                return
            self._seed_markers()
        self._update_markers(value)

    def estimate(self) -> float:
        """Current quantile estimate (exact while in the buffered range)."""
        if self.count == 0:
            raise ConfigurationError("no observations recorded")
        if self._buffer is not None:
            return exact_quantile(sorted(self._buffer), self.q)
        return self._heights[2]

    # ------------------------------------------------------------------
    def _seed_markers(self) -> None:
        """Initialise the five P² markers from the exact prefix.

        Marker heights are order statistics of the buffered sample at
        the canonical P² rank fractions ``(0, q/2, q, (1+q)/2, 1)``;
        marker positions are the (1-based) ranks those heights occupy,
        forced strictly increasing so the update invariants hold.
        """
        buffer = sorted(self._buffer or ())
        n = len(buffer)
        positions: list[int] = []
        for index, fraction in enumerate(self._increments):
            ideal = round(1 + (n - 1) * fraction)
            low = positions[-1] + 1 if positions else 1
            high = n - (4 - index)  # leave room for the markers above
            positions.append(min(max(ideal, low), high))
        self._positions = positions
        self._heights = [buffer[p - 1] for p in positions]
        self._desired = [
            1 + (n - 1) * fraction for fraction in self._increments
        ]
        self._buffer = None

    def _update_markers(self, value: float) -> None:
        heights = self._heights
        positions = self._positions
        # Locate the cell and absorb boundary extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and not (heights[cell] <= value < heights[cell + 1]):
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1
        for index in range(5):
            self._desired[index] += self._increments[index]
        # Adjust the three interior markers toward their desired ranks.
        for index in range(1, 4):
            drift = self._desired[index] - positions[index]
            if (drift >= 1.0 and positions[index + 1] - positions[index] > 1) or (
                drift <= -1.0 and positions[index - 1] - positions[index] < -1
            ):
                step = 1 if drift > 0 else -1
                candidate = self._parabolic(index, step)
                if not heights[index - 1] < candidate < heights[index + 1]:
                    candidate = self._linear(index, step)
                heights[index] = candidate
                positions[index] += step

    def _parabolic(self, index: int, step: int) -> float:
        heights = self._heights
        positions = self._positions
        below = positions[index] - positions[index - 1]
        above = positions[index + 1] - positions[index]
        span = positions[index + 1] - positions[index - 1]
        return heights[index] + (step / span) * (
            (below + step)
            * (heights[index + 1] - heights[index])
            / above
            + (above - step)
            * (heights[index] - heights[index - 1])
            / below
        )

    def _linear(self, index: int, step: int) -> float:
        heights = self._heights
        positions = self._positions
        return heights[index] + step * (
            heights[index + step] - heights[index]
        ) / (positions[index + step] - positions[index])
