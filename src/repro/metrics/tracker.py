"""Streaming per-request latency collection for the simulators.

:class:`StreamingQuantiles` is the O(1)-memory collector behind one
latency population: exact ``count``/``total``/``min``/``max`` plus one
shared exact prefix buffer that, once outgrown, seeds one
:class:`~repro.metrics.quantiles.P2Quantile` estimator per tracked
quantile (p50/p90/p99).  :class:`LatencyTracker` bundles the
three populations the bus simulator measures (wait/service/total) and
renders them as a :class:`~repro.metrics.summary.LatencyReport`.

Integer observations (bus cycles) accumulate in a plain ``int`` total -
exact and fast; float observations (the event-driven exponential
simulator's times) accumulate in an exact :class:`~fractions.Fraction`.
Either way the resulting :class:`LatencySummary` is exact where the
merge contract needs it to be.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.core.errors import ConfigurationError
from repro.metrics.quantiles import DEFAULT_EXACT_LIMIT, P2Quantile, exact_quantile
from repro.metrics.summary import LatencyReport, LatencySummary

TRACKED_QUANTILES = (0.5, 0.9, 0.99)
"""The quantiles every latency summary reports (p50, p90, p99)."""


class StreamingQuantiles:
    """One latency population: exact aggregates + streaming percentiles.

    The exact prefix is held *once*, in this collector; while the
    stream fits it, queries cost one buffer and one sort per summary
    instead of one per tracked quantile.  When the stream outgrows the
    prefix, a one-time transition replays it into the three
    :class:`P2Quantile` estimators (each briefly re-buffering it to
    seed its markers), after which everything is O(1) streaming.
    """

    __slots__ = ("exact_limit", "count", "_int_total", "_frac_total",
                 "_minimum", "_maximum", "_buffer", "_estimators")

    def __init__(self, exact_limit: int = DEFAULT_EXACT_LIMIT) -> None:
        # Validate up front, exactly like P2Quantile does: a too-small
        # limit must fail here, not mid-run at the P2 transition.
        if not isinstance(exact_limit, int) or exact_limit < 5:
            raise ConfigurationError(
                f"exact_limit must be an integer >= 5, got {exact_limit!r}"
            )
        self.exact_limit = exact_limit
        self.count = 0
        self._int_total = 0
        self._frac_total: Fraction | None = None
        self._minimum: float | None = None
        self._maximum: float | None = None
        self._buffer: list[float] | None = []
        self._estimators: tuple[P2Quantile, ...] | None = None

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Consume one observation (int bus cycles or float time)."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"latency observations must be numbers, got {value!r}"
            )
        if not math.isfinite(value):
            raise ConfigurationError(
                f"latency observations must be finite, got {value!r}"
            )
        if value < 0:
            raise ConfigurationError(
                f"latency observations must be >= 0, got {value!r}"
            )
        self.count += 1
        if isinstance(value, int):
            self._int_total += value
        else:
            if self._frac_total is None:
                self._frac_total = Fraction(0)
            self._frac_total += Fraction(value)
        numeric = float(value)
        if self._minimum is None or numeric < self._minimum:
            self._minimum = numeric
        if self._maximum is None or numeric > self._maximum:
            self._maximum = numeric
        if self._estimators is None:
            assert self._buffer is not None
            if len(self._buffer) < self.exact_limit:
                self._buffer.append(numeric)
                return
            # The stream just outgrew the exact range: build the
            # estimators by replaying the shared prefix, then stream.
            self._estimators = tuple(
                P2Quantile(q, exact_limit=self.exact_limit)
                for q in TRACKED_QUANTILES
            )
            for estimator in self._estimators:
                for buffered in self._buffer:
                    estimator.add(buffered)
            self._buffer = None
        for estimator in self._estimators:
            estimator.add(numeric)

    def quantile(self, q: float) -> float:
        """Current estimate of quantile ``q`` (must be a tracked one)."""
        if q not in TRACKED_QUANTILES:
            raise ConfigurationError(
                f"quantile {q} is not tracked; tracked: {TRACKED_QUANTILES}"
            )
        if self.count == 0:
            raise ConfigurationError("no observations recorded")
        if self._buffer is not None:
            return exact_quantile(sorted(self._buffer), q)
        assert self._estimators is not None
        return self._estimators[TRACKED_QUANTILES.index(q)].estimate()

    @property
    def exact(self) -> bool:
        """True while all estimates are still exact (small samples)."""
        return self._estimators is None

    def summary(self) -> LatencySummary:
        """Freeze the current state into a mergeable summary value."""
        if self.count == 0:
            return LatencySummary()
        total = Fraction(self._int_total)
        if self._frac_total is not None:
            total += self._frac_total
        assert self._minimum is not None and self._maximum is not None
        if self._buffer is not None:
            ordered = sorted(self._buffer)
            p50, p90, p99 = (
                Fraction(exact_quantile(ordered, q)) for q in TRACKED_QUANTILES
            )
        else:
            assert self._estimators is not None
            p50, p90, p99 = (
                Fraction(estimator.estimate())
                for estimator in self._estimators
            )
        return LatencySummary(
            count=self.count,
            total=total,
            minimum=Fraction(self._minimum),
            maximum=Fraction(self._maximum),
            p50=p50,
            p90=p90,
            p99=p99,
        )


class LatencyTracker:
    """Wait/service/total collection for one simulation run.

    The bus simulator calls :meth:`record` once per completed request;
    :meth:`report` freezes the three populations.  A fresh tracker is
    installed at the start of the measurement window, so summaries never
    mix warm-up requests with measured ones.
    """

    __slots__ = ("wait", "service", "total")

    def __init__(self, exact_limit: int = DEFAULT_EXACT_LIMIT) -> None:
        self.wait = StreamingQuantiles(exact_limit)
        self.service = StreamingQuantiles(exact_limit)
        self.total = StreamingQuantiles(exact_limit)

    def record(self, wait: float, service: float, total: float) -> None:
        """Record one completed request's latency decomposition."""
        self.wait.add(wait)
        self.service.add(service)
        self.total.add(total)

    @property
    def count(self) -> int:
        """Completed requests recorded so far."""
        return self.total.count

    def report(self) -> LatencyReport:
        """Freeze the tracked populations into a mergeable report."""
        return LatencyReport(
            wait=self.wait.summary(),
            service=self.service.summary(),
            total=self.total.summary(),
        )


__all__ = [
    "StreamingQuantiles",
    "LatencyTracker",
    "TRACKED_QUANTILES",
    "exact_quantile",
]
