"""Streaming latency-distribution metrics.

The buffering decisions this paper studies are really decisions about
the *tail* of the waiting-time distribution; mean bandwidth alone cannot
distinguish a buffer that shortens p99 waits from one that merely
reorders them.  This package gives every layer of the library the same
latency vocabulary:

* :mod:`repro.metrics.quantiles` - the O(1)-memory P² streaming
  quantile estimator with an exact small-sample fallback;
* :mod:`repro.metrics.summary` - the mergeable
  :class:`LatencySummary` / :class:`LatencyReport` values whose merge
  operator is *exactly* associative and order-invariant (rational
  arithmetic), so sharded and parallel runs combine bit-for-bit;
* :mod:`repro.metrics.tracker` - the per-run collector the simulators
  feed;
* :mod:`repro.metrics.sketch` - the vectorized per-row
  :class:`FleetQuantileSketch` the batch kernel feeds: a collapsing
  power-of-two histogram with exact aggregates, exact quantiles while
  its bucket width is 1, and a ``2*max/bins`` value-error bound after
  collapsing; rows freeze into ordinary :class:`LatencySummary`
  values, so every merge path downstream is unchanged.

The cycle-accurate bus simulator records wait/service/total per
completed request (:class:`repro.bus.MultiplexedBusSystem`), the
replication layer aggregates reports across seeds
(:func:`repro.des.replications.replicate_latency`), and the scenario
pipeline renders percentile columns per work unit
(``repro-experiments scenario <name> --metrics latency``).
"""

from repro.metrics.quantiles import (
    DEFAULT_EXACT_LIMIT,
    P2Quantile,
    exact_quantile,
)
from repro.metrics.sketch import (
    DEFAULT_SKETCH_BINS,
    FleetQuantileSketch,
)
from repro.metrics.summary import (
    LATENCY_METRICS_TOKEN,
    LATENCY_METRICS_VERSION,
    LatencyReport,
    LatencySummary,
    merge_latency_reports,
    merge_summaries,
)
from repro.metrics.tracker import (
    TRACKED_QUANTILES,
    LatencyTracker,
    StreamingQuantiles,
)

__all__ = [
    "DEFAULT_EXACT_LIMIT",
    "DEFAULT_SKETCH_BINS",
    "FleetQuantileSketch",
    "P2Quantile",
    "exact_quantile",
    "LATENCY_METRICS_TOKEN",
    "LATENCY_METRICS_VERSION",
    "LatencyReport",
    "LatencySummary",
    "merge_latency_reports",
    "merge_summaries",
    "TRACKED_QUANTILES",
    "LatencyTracker",
    "StreamingQuantiles",
]
