"""Vectorized per-row quantile sketches for lockstep fleets.

The scalar pipeline (:mod:`repro.metrics.tracker`) feeds one
:class:`~repro.metrics.quantiles.P2Quantile` trio per run; the batch
kernel (:mod:`repro.bus.batch`) completes requests for *hundreds* of
runs per bus cycle, so per-observation Python calls would erase the
vectorization win.  :class:`FleetQuantileSketch` is the fleet-scale
counterpart: one fixed-size integer histogram per fleet row, updated for
a whole cycle's completions with a handful of NumPy operations.

Design: collapsing power-of-two histograms
------------------------------------------
Bus latencies are small non-negative integers (cycle counts), so each
row keeps ``bins`` integer counters over value buckets of width
``2**shift`` starting at zero.  A row starts at width 1 (bucket ``b``
holds exactly the observations equal to ``b``); when an observation
lands beyond the last bucket the row's histogram *collapses* - adjacent
buckets pair-sum and the width doubles - until the value fits.  Updates
stay O(1) amortised per observation and the whole fleet updates with
vectorized scatters.

Accuracy contract (documented bound)
------------------------------------
The histogram stores exact ranks, so - unlike P² - the sketch has **zero
rank error**: a quantile estimate is computed from the true number of
observations at or below every bucket.  All error is *value*
quantisation from the bucket width ``w = 2**shift``:

* while ``w == 1`` (every observation seen so far is below ``bins``)
  the sketch is **exact**: estimates equal the empirical inclusive
  quantile (same rational rank arithmetic as
  :func:`repro.metrics.quantiles.exact_quantile`, property-tested
  bit-equal as floats);
* after collapsing, an order statistic is off by less than ``w``, and
  the width invariant ``w <= max(1, 2 * maximum / bins)`` bounds the
  absolute error of every reported quantile by ``2 * maximum / bins``
  (relative error ``< 2 / bins``, i.e. under 0.1% at the default 2048
  bins).  Estimates are clamped to the exact ``[minimum, maximum]``.

``count``, ``total``, ``minimum`` and ``maximum`` are tracked exactly in
integer arithmetic regardless of collapsing.

Merge story
-----------
:meth:`FleetQuantileSketch.summaries` emits one
:class:`~repro.metrics.summary.LatencySummary` per row whose fields are
exact rationals, so fleet results merge through the library's existing
exactly-associative count-weighted contract
(:meth:`LatencySummary.merge`) - sharded and parallel fleet runs combine
bit-for-bit.  Sketches themselves also merge (:meth:`merge`): widths
align by collapsing the finer operand, counters add, and the result is
the sketch the concatenated stream would have produced at the coarser
width.

NumPy is required (the sketch exists to serve the batch kernel, which
already needs it); importing this module without numpy raises a
:class:`~repro.core.errors.ConfigurationError` naming the extra only
when a sketch is actually constructed.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.errors import ConfigurationError
from repro.metrics.summary import LatencySummary

DEFAULT_SKETCH_BINS = 2048
"""Histogram buckets per fleet row.

Latencies below this stay width-1 (exact); beyond it the relative
quantile error is bounded by ``2 / bins`` (< 0.1%)."""

_MIN_BINS = 8
"""Fewer buckets than this would make the collapse loop degenerate."""


def _require_numpy():
    try:
        import numpy
    except ImportError:
        raise ConfigurationError(
            "FleetQuantileSketch requires numpy, an optional dependency "
            "of this package; install it with "
            "pip install 'repro-single-bus[batch]' (scalar runs can use "
            "repro.metrics.StreamingQuantiles instead)"
        ) from None
    return numpy


class FleetQuantileSketch:
    """One collapsing integer histogram per fleet row.

    Parameters
    ----------
    rows:
        Number of fleet rows (independent latency populations).
    bins:
        Buckets per row (even; power of two recommended; ``>= 8``).
        Memory is ``rows * bins`` int64 counters.

    Observations are non-negative integers (bus-cycle counts).  The hot
    path is :meth:`add`, which consumes one observation for each of a
    set of *distinct* rows - exactly the shape of one lockstep cycle's
    completions.
    """

    def __init__(self, rows: int, bins: int = DEFAULT_SKETCH_BINS) -> None:
        np = _require_numpy()
        self._np = np
        if rows < 1:
            raise ConfigurationError(f"rows must be >= 1, got {rows}")
        if bins < _MIN_BINS or bins % 2:
            raise ConfigurationError(
                f"bins must be an even number >= {_MIN_BINS}, got {bins}"
            )
        self.rows = int(rows)
        self.bins = int(bins)
        self.count = np.zeros(rows, dtype=np.int64)
        self.total = np.zeros(rows, dtype=np.int64)
        self._minimum = np.full(rows, np.iinfo(np.int64).max, dtype=np.int64)
        self._maximum = np.full(rows, -1, dtype=np.int64)
        self._shift = np.zeros(rows, dtype=np.int64)
        self._hist = np.zeros((rows, bins), dtype=np.int64)

    # ------------------------------------------------------------------
    def _collapse(self, rows) -> None:
        """Double the bucket width of each listed row (pair-sum fold)."""
        np = self._np
        hist = self._hist
        half = self.bins // 2
        folded = hist[rows, 0::2] + hist[rows, 1::2]
        hist[rows] = 0
        hist[rows, :half] = folded
        self._shift[rows] += 1

    def add(self, rows, values) -> None:
        """Record one observation per listed row.

        ``rows`` must be distinct row indices (one lockstep cycle
        completes at most one request per row, which is what makes the
        plain fancy-indexed scatter below correct); ``values`` are the
        matching non-negative integer observations.
        """
        np = self._np
        rows = np.asarray(rows, dtype=np.int64)
        values = np.asarray(values)
        if values.dtype.kind not in "iu":
            if not np.isfinite(values).all():
                raise ConfigurationError(
                    "latency observations must be finite numbers"
                )
            as_int = values.astype(np.int64)
            if (as_int != values).any():
                raise ConfigurationError(
                    "latency observations must be integral bus-cycle counts"
                )
            values = as_int
        else:
            values = values.astype(np.int64, copy=False)
        if values.size == 0:
            return
        if int(values.min()) < 0:
            raise ConfigurationError(
                "latency observations must be non-negative"
            )
        self.count[rows] += 1
        self.total[rows] += values
        self._minimum[rows] = np.minimum(self._minimum[rows], values)
        self._maximum[rows] = np.maximum(self._maximum[rows], values)
        buckets = values >> self._shift[rows]
        over = buckets >= self.bins
        while over.any():
            self._collapse(np.unique(rows[over]))
            buckets = values >> self._shift[rows]
            over = buckets >= self.bins
        self._hist[rows, buckets] += 1

    # ------------------------------------------------------------------
    def merge(self, other: "FleetQuantileSketch") -> None:
        """Fold ``other`` into this sketch, row by row (in place).

        Both operands collapse to the coarser of the two widths per
        row, after which the histograms add exactly - the result is the
        sketch of the concatenated stream at that width.
        """
        np = self._np
        if not isinstance(other, FleetQuantileSketch):
            raise ConfigurationError(
                f"can only merge FleetQuantileSketch values, got {other!r}"
            )
        if other.rows != self.rows or other.bins != self.bins:
            raise ConfigurationError(
                "sketch merge requires identical (rows, bins) shapes; "
                f"got ({self.rows}, {self.bins}) and "
                f"({other.rows}, {other.bins})"
            )
        while True:
            behind = np.nonzero(self._shift < other._shift)[0]
            if behind.size == 0:
                break
            self._collapse(behind)
        while True:
            behind = np.nonzero(other._shift < self._shift)[0]
            if behind.size == 0:
                break
            other._collapse(behind)
        self.count += other.count
        self.total += other.total
        self._minimum = np.minimum(self._minimum, other._minimum)
        self._maximum = np.maximum(self._maximum, other._maximum)
        self._hist += other._hist

    # ------------------------------------------------------------------
    def _order_statistic(
        self, cumulative, row: int, k: int, width: int
    ) -> Fraction:
        """The (0-based) ``k``-th order statistic of one row, exact
        while ``width == 1`` and within-bucket interpolated otherwise."""
        np = self._np
        bucket = int(np.searchsorted(cumulative, k, side="right"))
        if width == 1:
            return Fraction(bucket)
        below = int(cumulative[bucket - 1]) if bucket else 0
        occupants = int(self._hist[row, bucket])
        offset = k - below
        base = Fraction(bucket * width)
        if occupants > 1:
            # Spread the bucket's occupants evenly over its value span.
            estimate = base + Fraction((width - 1) * offset, occupants - 1)
        else:
            estimate = base + Fraction(width - 1, 2)
        low = Fraction(int(self._minimum[row]))
        high = Fraction(int(self._maximum[row]))
        return min(max(estimate, low), high)

    def _quantile(self, cumulative, row: int, percent: int) -> Fraction:
        """Inclusive-interpolation quantile ``percent/100`` of one row.

        Mirrors :func:`repro.metrics.quantiles.exact_quantile`'s integer
        rank arithmetic exactly (same ``divmod``, same unreduced
        denominator), so width-1 rows reproduce the scalar pipeline's
        values bit-for-bit when rendered as floats.
        """
        n = int(self.count[row])
        width = 1 << int(self._shift[row])
        low, remainder = divmod(percent * (n - 1), 100)
        if low >= n - 1:
            return self._order_statistic(cumulative, row, n - 1, width)
        a = self._order_statistic(cumulative, row, low, width)
        if remainder == 0:
            return a
        b = self._order_statistic(cumulative, row, low + 1, width)
        return (a * (100 - remainder) + b * remainder) / 100

    def row_summary(self, row: int) -> LatencySummary:
        """The :class:`LatencySummary` of one row (empty rows allowed)."""
        if not 0 <= row < self.rows:
            raise ConfigurationError(
                f"row must lie in 0..{self.rows - 1}, got {row}"
            )
        n = int(self.count[row])
        if n == 0:
            return LatencySummary()
        cumulative = self._np.cumsum(self._hist[row])
        return LatencySummary(
            count=n,
            total=Fraction(int(self.total[row])),
            minimum=Fraction(int(self._minimum[row])),
            maximum=Fraction(int(self._maximum[row])),
            p50=self._quantile(cumulative, row, 50),
            p90=self._quantile(cumulative, row, 90),
            p99=self._quantile(cumulative, row, 99),
        )

    def summaries(self) -> list[LatencySummary]:
        """One exact-rational :class:`LatencySummary` per fleet row.

        The emitted values carry only integers and exact fractions, so
        they merge through :meth:`LatencySummary.merge`'s associative
        count-weighted contract exactly like the scalar pipeline's.
        """
        return [self.row_summary(row) for row in range(self.rows)]
