"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so
environments whose setuptools cannot build PEP 660 editable wheels (no
``wheel`` package available) can still do a development install via
``python setup.py develop`` / ``pip install -e .``.
"""

from setuptools import setup

setup()
